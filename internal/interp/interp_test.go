package interp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		ys   []float64
		want error
	}{
		{"mismatch", []float64{0, 1}, []float64{0}, ErrLengthMismatch},
		{"too few", []float64{0}, []float64{0}, ErrTooFewPoints},
		{"empty", nil, nil, ErrTooFewPoints},
		{"not increasing", []float64{0, 0}, []float64{0, 1}, ErrNotIncreasing},
		{"decreasing", []float64{1, 0}, []float64{0, 1}, ErrNotIncreasing},
		{"nan x", []float64{math.NaN(), 1}, []float64{0, 1}, ErrNonFinite},
		{"nan y", []float64{0, 1}, []float64{0, math.NaN()}, ErrNonFinite},
		{"inf y", []float64{0, 1}, []float64{0, math.Inf(1)}, ErrNonFinite},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewLinear(tc.xs, tc.ys); err == nil {
				t.Errorf("NewLinear(%v,%v) = nil error, want %v", tc.xs, tc.ys, tc.want)
			}
			if _, err := NewPCHIP(tc.xs, tc.ys); err == nil {
				t.Errorf("NewPCHIP(%v,%v) = nil error, want %v", tc.xs, tc.ys, tc.want)
			}
		})
	}
}

func TestLinearInterpolatesKnots(t *testing.T) {
	xs := []float64{0, 1, 3, 7}
	ys := []float64{0, 2, 5, 6}
	l, err := NewLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := l.At(xs[i]); math.Abs(got-ys[i]) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestLinearMidpoints(t *testing.T) {
	l, err := NewLinear([]float64{0, 2, 4}, []float64{0, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.At(1); got != 2 {
		t.Errorf("At(1) = %v, want 2", got)
	}
	if got := l.At(3); got != 5 {
		t.Errorf("At(3) = %v, want 5", got)
	}
}

func TestLinearClampsOutsideDomain(t *testing.T) {
	l, _ := NewLinear([]float64{0, 1}, []float64{3, 5})
	if got := l.At(-10); got != 3 {
		t.Errorf("At(-10) = %v, want 3", got)
	}
	if got := l.At(10); got != 5 {
		t.Errorf("At(10) = %v, want 5", got)
	}
}

func TestLinearDeriv(t *testing.T) {
	l, _ := NewLinear([]float64{0, 1, 3}, []float64{0, 2, 2})
	if got := l.DerivAt(0.5); got != 2 {
		t.Errorf("DerivAt(0.5) = %v, want 2", got)
	}
	if got := l.DerivAt(2); got != 0 {
		t.Errorf("DerivAt(2) = %v, want 0", got)
	}
}

func TestLinearDomain(t *testing.T) {
	l, _ := NewLinear([]float64{-2, 5}, []float64{0, 1})
	if l.Min() != -2 || l.Max() != 5 {
		t.Errorf("domain = [%v,%v], want [-2,5]", l.Min(), l.Max())
	}
}

func TestPCHIPInterpolatesKnots(t *testing.T) {
	xs := []float64{0, 0.5, 1, 2, 4}
	ys := []float64{0, 1, 1.5, 1.75, 2}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := p.At(xs[i]); math.Abs(got-ys[i]) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestPCHIPTwoPointsIsLinear(t *testing.T) {
	p, err := NewPCHIP([]float64{0, 2}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.5, 1, 1.5, 2} {
		want := 1 + 2*x
		if got := p.At(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
	}
}

// PCHIP of monotone data must be monotone — the defining property.
func TestPCHIPMonotonePreservation(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0, 0.1, 3, 3.05, 3.1, 10}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	prev := p.At(0)
	for x := 0.0; x <= 5.0; x += 0.001 {
		v := p.At(x)
		if v < prev-1e-9 {
			t.Fatalf("PCHIP not monotone: At(%v)=%v < previous %v", x, v, prev)
		}
		prev = v
	}
}

// No overshoot: interpolant stays within the data range.
func TestPCHIPNoOvershoot(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 10, 10.1, 10.2}
	p, _ := NewPCHIP(xs, ys)
	for x := 0.0; x <= 3.0; x += 0.001 {
		v := p.At(x)
		if v < -1e-9 || v > 10.2+1e-9 {
			t.Fatalf("overshoot at x=%v: %v outside [0, 10.2]", x, v)
		}
	}
}

// The paper's generator shape: (0,0), (C/2, v), (C, v+w) with w <= v.
// PCHIP through such points must be nondecreasing.
func TestPCHIPPaperShape(t *testing.T) {
	const c = 1000.0
	for _, vw := range [][2]float64{{1, 1}, {5, 1}, {2, 0}, {0.3, 0.29}} {
		v, w := vw[0], vw[1]
		p, err := NewPCHIP([]float64{0, c / 2, c}, []float64{0, v, v + w})
		if err != nil {
			t.Fatal(err)
		}
		prev := 0.0
		for x := 0.0; x <= c; x += 0.5 {
			y := p.At(x)
			if y < prev-1e-9 {
				t.Fatalf("v=%v w=%v: decreasing at x=%v (%v < %v)", v, w, x, y, prev)
			}
			prev = y
		}
		if got := p.At(c); math.Abs(got-(v+w)) > 1e-9 {
			t.Errorf("At(C) = %v, want %v", got, v+w)
		}
	}
}

func TestPCHIPDerivativeMatchesFiniteDifference(t *testing.T) {
	xs := []float64{0, 1, 2, 4, 8}
	ys := []float64{0, 3, 4, 4.5, 5}
	p, _ := NewPCHIP(xs, ys)
	const h = 1e-6
	for _, x := range []float64{0.25, 0.75, 1.5, 3, 6} {
		fd := (p.At(x+h) - p.At(x-h)) / (2 * h)
		if got := p.DerivAt(x); math.Abs(got-fd) > 1e-4 {
			t.Errorf("DerivAt(%v) = %v, finite difference %v", x, got, fd)
		}
	}
}

func TestPCHIPDerivNonNegativeForMonotoneData(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 2, 2.5, 2.6, 5}
	p, _ := NewPCHIP(xs, ys)
	for x := 0.0; x <= 4.0; x += 0.01 {
		if d := p.DerivAt(x); d < -1e-9 {
			t.Fatalf("DerivAt(%v) = %v < 0 for monotone data", x, d)
		}
	}
}

func TestPCHIPFlatData(t *testing.T) {
	p, _ := NewPCHIP([]float64{0, 1, 2}, []float64{3, 3, 3})
	for _, x := range []float64{0, 0.3, 1, 1.7, 2} {
		if got := p.At(x); math.Abs(got-3) > 1e-12 {
			t.Errorf("At(%v) = %v, want 3", x, got)
		}
		if got := p.DerivAt(x); math.Abs(got) > 1e-12 {
			t.Errorf("DerivAt(%v) = %v, want 0", x, got)
		}
	}
}

func TestPCHIPLocalExtremumZeroSlope(t *testing.T) {
	// Data rises then falls; the knot at the peak must get derivative 0.
	p, _ := NewPCHIP([]float64{0, 1, 2}, []float64{0, 5, 0})
	d := p.Slopes()
	if d[1] != 0 {
		t.Errorf("slope at extremum = %v, want 0", d[1])
	}
}

func TestKnotsReturnsCopies(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 1, 4}
	p, _ := NewPCHIP(xs, ys)
	gx, gy := p.Knots()
	gx[0] = 99
	gy[0] = 99
	if p.At(0) != 0 {
		t.Error("mutating Knots() result affected interpolant")
	}
	l, _ := NewLinear(xs, ys)
	lx, ly := l.Knots()
	lx[0], ly[0] = 99, 99
	if l.At(0) != 0 {
		t.Error("mutating Linear Knots() result affected interpolant")
	}
}

func TestNewCopiesInput(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 1, 4}
	p, _ := NewPCHIP(xs, ys)
	xs[1] = 1.5
	ys[1] = -7
	if got := p.At(1); got != 1 {
		t.Errorf("At(1) = %v after mutating input, want 1", got)
	}
}

func TestIsMonotoneNondecreasing(t *testing.T) {
	if !IsMonotoneNondecreasing([]float64{0, 0, 1, 5}) {
		t.Error("expected monotone")
	}
	if IsMonotoneNondecreasing([]float64{0, 2, 1}) {
		t.Error("expected non-monotone")
	}
	if !IsMonotoneNondecreasing(nil) {
		t.Error("empty slice should count as monotone")
	}
}

func TestIsConcaveData(t *testing.T) {
	if !IsConcaveData([]float64{0, 1, 2}, []float64{0, 2, 3}, 1e-12) {
		t.Error("expected concave")
	}
	if IsConcaveData([]float64{0, 1, 2}, []float64{0, 1, 3}, 1e-12) {
		t.Error("expected convex data to be rejected")
	}
	if !IsConcaveData([]float64{0, 1}, []float64{0, 5}, 0) {
		t.Error("two points are trivially concave")
	}
}

// Property: for random monotone data, PCHIP is monotone on a dense grid.
func TestPCHIPMonotoneProperty(t *testing.T) {
	f := func(incs [6]float64) bool {
		xs := make([]float64, 7)
		ys := make([]float64, 7)
		for i := 1; i < 7; i++ {
			xs[i] = xs[i-1] + 1
			ys[i] = ys[i-1] + math.Abs(incs[i-1])
		}
		for i := range ys {
			if !isFinite(ys[i]) {
				return true // skip degenerate random draws
			}
		}
		p, err := NewPCHIP(xs, ys)
		if err != nil {
			return false
		}
		prev := p.At(0)
		for x := 0.0; x <= 6.0; x += 0.05 {
			v := p.At(x)
			if v < prev-1e-6*(1+math.Abs(prev)) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLocate(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	cases := []struct {
		x    float64
		want int
	}{
		{-1, 0}, {0, 0}, {0.5, 0}, {1, 1}, {1.5, 1}, {2.9, 2}, {3, 2}, {4, 2},
	}
	for _, tc := range cases {
		if got := locate(xs, tc.x); got != tc.want {
			t.Errorf("locate(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func BenchmarkPCHIPAt(b *testing.B) {
	xs := make([]float64, 64)
	ys := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = math.Sqrt(float64(i))
	}
	p, _ := NewPCHIP(xs, ys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.At(float64(i%6300) / 100)
	}
}
