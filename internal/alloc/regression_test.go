package alloc

import (
	"math"
	"testing"

	"aa/internal/utility"
)

// Regression tests for two allocator bugs surfaced by the internal/check
// verification layer. Both reproduce the exact failure shape: run them
// against the pre-fix allocators and they fail with infeasible output.

// Concave's λ-doubling search gives up once λ exceeds 1e18. Before the
// fix, the give-up path fell through to the plateau pass with an
// allocation probed at an infeasible water level, returning allocations
// that sum to a multiple of the budget.
func TestConcaveSteepDerivativesStayFeasible(t *testing.T) {
	// Two linear threads steeper than the doubling ceiling: sumAt(λ)
	// returns both caps (200) for every probed λ, so bisection never
	// finds a feasible level and the give-up path must renormalize.
	fs := []utility.Func{
		utility.Linear{Slope: 2e18, C: 100},
		utility.Linear{Slope: 2e18, C: 100},
	}
	budget := 100.0
	r := Concave(fs, budget)
	feasible(t, fs, r.Alloc, budget)
	if sum := r.Alloc[0] + r.Alloc[1]; math.Abs(sum-budget) > 1e-6*budget {
		t.Errorf("allocations sum to %v, want the full budget %v", sum, budget)
	}
	if math.Abs(r.Alloc[0]-r.Alloc[1]) > 1e-6*budget {
		t.Errorf("identical threads split unevenly: %v", r.Alloc)
	}
	if r.Lambda <= 0 {
		t.Errorf("Lambda = %v, want the (positive) deepest probed level", r.Lambda)
	}
	if r.Iterations == 0 {
		t.Error("Iterations = 0, want the doubling/bisection steps counted")
	}
}

// Same give-up path with a mix of one astronomically steep thread and
// ordinary curved threads: the renormalized result must stay feasible.
func TestConcaveSteepMixedStaysFeasible(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 1e19, C: 100},
		utility.Log{Scale: 2, Shift: 10, C: 100},
		utility.SatExp{Scale: 3, K: 20, C: 100},
	}
	budget := 50.0
	r := Concave(fs, budget)
	feasible(t, fs, r.Alloc, budget)
	if sum := r.Alloc[0] + r.Alloc[1] + r.Alloc[2]; sum > budget*(1+1e-9) {
		t.Errorf("sum %v > budget %v", sum, budget)
	}
}

// Greedy granted a full unit to a thread whose Cap() is below the unit,
// pushing its allocation past the cap (the utility clamps, so the bug was
// invisible in Total but the allocation vector was infeasible).
func TestGreedyCapBelowUnit(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 5, C: 0.5}, // cap smaller than one unit
		utility.Linear{Slope: 1, C: 100},
	}
	r := Greedy(fs, 10, 1)
	feasible(t, fs, r.Alloc, 10)
	if r.Alloc[0] != 0.5 {
		t.Errorf("sub-unit-cap thread got %v, want its cap 0.5", r.Alloc[0])
	}
	if r.Alloc[1] != 9 {
		t.Errorf("second thread got %v, want 9 (its grant consumed one of the 10 units)", r.Alloc[1])
	}
	if want := 5*0.5 + 9.0; math.Abs(r.Total-want) > 1e-12 {
		t.Errorf("total %v, want %v", r.Total, want)
	}
}

// A cap that is not a multiple of the unit: the final grant must be the
// remaining headroom, not a full unit.
func TestGreedyCapNotMultipleOfUnit(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 5, C: 2.5},
		utility.Linear{Slope: 1, C: 100},
	}
	r := Greedy(fs, 10, 1)
	feasible(t, fs, r.Alloc, 10)
	if r.Alloc[0] != 2.5 {
		t.Errorf("thread 0 got %v, want exactly its cap 2.5", r.Alloc[0])
	}
	if r.Alloc[1] != 7 {
		t.Errorf("thread 1 got %v, want 7 (thread 0 consumed three steps)", r.Alloc[1])
	}
}

// The documented budget quantization: Greedy hands out ⌊budget/unit⌋
// whole units and leaves the fractional remainder unallocated (it is the
// granularity error the caller accepted by choosing unit, and keeps
// Greedy on the same grid as DPExact).
func TestGreedyQuantizesBudget(t *testing.T) {
	fs := []utility.Func{utility.Linear{Slope: 1, C: 100}}
	r := Greedy(fs, 10.7, 1)
	if r.Alloc[0] != 10 {
		t.Errorf("alloc %v, want 10 (⌊10.7⌋ whole units)", r.Alloc[0])
	}
}
