package main

import (
	"bytes"
	"strings"
	"testing"

	"aa/internal/check"
)

func TestRunCheckedSimulation(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-events", "30", "-costs", "0,10", "-check"}, &out, &errOut)
	if err != nil {
		t.Fatalf("checked simulation failed: %v", err)
	}
	if !strings.Contains(errOut.String(), "check:") {
		t.Errorf("missing check summary, stderr: %q", errOut.String())
	}
	if check.Enabled() {
		t.Error("run left process-wide checking enabled")
	}
}

func TestRunCheckEnvVar(t *testing.T) {
	t.Setenv("AA_CHECK", "1")
	var out, errOut bytes.Buffer
	if err := run([]string{"-events", "20", "-costs", "0"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "check:") {
		t.Errorf("AA_CHECK=1 did not trigger checking, stderr: %q", errOut.String())
	}
}
