package replay

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aa/internal/engine"
	"aa/internal/instio"
)

// solveServer is a minimal stand-in for aaserve's /solve endpoint,
// speaking the same instio wire format.
func solveServer(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/solve" {
			http.NotFound(w, r)
			return
		}
		in, err := instio.Decode(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := engine.Default().Solve(r.Context(), &engine.Request{Instance: in})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := instio.EncodeAssignment(w, in, resp.Assignment); err != nil {
			t.Errorf("encode assignment: %v", err)
		}
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// Remote replay rides the aaserve wire format, which resamples utility
// curves onto a fixed grid (instio.reconstructKnots) — so it is a close
// approximation of in-process replay, not bit-identical to it. Assert
// agreement within wire tolerance, plus exact bound accounting (the
// bound is computed locally from the true utilities either way) and
// run-to-run determinism of the remote path itself.
func TestRunAgainstHTTPServer(t *testing.T) {
	addr := solveServer(t)
	sc := shrink(t, "failures")

	remote, err := Run(sc, RunOptions{Seed: 6, Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Run(sc, RunOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}

	if remote.Scenario.Solver != "http" || local.Scenario.Solver != "engine" {
		t.Fatalf("solver labels: remote=%q local=%q", remote.Scenario.Solver, local.Scenario.Solver)
	}
	if remote.Solves.Resolves == 0 {
		t.Fatal("remote replay issued no solves")
	}
	if remote.Utility.BoundIntegral != local.Utility.BoundIntegral {
		t.Errorf("bound integral diverged: remote %v, local %v",
			remote.Utility.BoundIntegral, local.Utility.BoundIntegral)
	}
	if d := remote.Utility.Ratio - local.Utility.Ratio; d > 1e-3 || d < -1e-3 {
		t.Errorf("ratio diverged beyond wire tolerance: remote %v, local %v",
			remote.Utility.Ratio, local.Utility.Ratio)
	}

	again, err := Run(sc, RunOptions{Seed: 6, Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	if again.Utility != remote.Utility || again.Solves != remote.Solves {
		t.Errorf("remote replay not deterministic run-to-run:\n%+v\n%+v",
			remote.Utility, again.Utility)
	}
}
