package replay

import (
	"strings"
	"testing"

	"aa/internal/online"
)

func TestBuiltinsValidate(t *testing.T) {
	names := Builtins()
	if len(names) < 3 {
		t.Fatalf("want at least three built-in scenario families, got %v", names)
	}
	for _, name := range names {
		sc, ok := Builtin(name)
		if !ok {
			t.Fatalf("Builtin(%q) missing", name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
	}
	if _, ok := Builtin("no-such-scenario"); ok {
		t.Error("Builtin accepted an unknown name")
	}
}

// Traces must be well formed: sorted times, unique arrival ids, every
// departure after its arrival, failures always recovered in order, and
// regeneration with the same seed bit-identical.
func TestTraceWellFormed(t *testing.T) {
	for _, name := range Builtins() {
		t.Run(name, func(t *testing.T) {
			sc, _ := Builtin(name)
			if sc.InitialThreads > 10_000 {
				sc.InitialThreads = 10_000 // keep generation fast; full size is env-guarded
			}
			events, st, err := Trace(sc, 7)
			if err != nil {
				t.Fatal(err)
			}
			if st.Arrivals == 0 {
				t.Fatal("trace has no arrivals")
			}
			if sc.InitialThreads > 0 && st.Batches != 1 {
				t.Fatalf("initialThreads=%d produced %d batch events", sc.InitialThreads, st.Batches)
			}
			seenArrive := map[int]float64{}
			down := map[int]bool{}
			last := 0.0
			for i, ev := range events {
				if ev.Time < last {
					t.Fatalf("event %d out of order: %v < %v", i, ev.Time, last)
				}
				last = ev.Time
				switch ev.Kind {
				case online.ArriveBatch:
					if ev.ID != -1 {
						t.Fatalf("batch event carries id %d, want -1", ev.ID)
					}
					for _, ba := range ev.Batch {
						if _, dup := seenArrive[ba.ID]; dup {
							t.Fatalf("duplicate arrival id %d (batch)", ba.ID)
						}
						if ba.Util == nil {
							t.Fatalf("batch arrival %d without utility", ba.ID)
						}
						seenArrive[ba.ID] = ev.Time
					}
				case online.Arrive:
					if _, dup := seenArrive[ev.ID]; dup {
						t.Fatalf("duplicate arrival id %d", ev.ID)
					}
					if ev.Util == nil {
						t.Fatalf("arrival %d without utility", ev.ID)
					}
					seenArrive[ev.ID] = ev.Time
				case online.Depart:
					at, ok := seenArrive[ev.ID]
					if !ok {
						t.Fatalf("departure of unknown thread %d", ev.ID)
					}
					if ev.Time < at {
						t.Fatalf("thread %d departs at %v before arriving at %v", ev.ID, ev.Time, at)
					}
				case online.Fail:
					if down[ev.ID] {
						t.Fatalf("server %d failed twice", ev.ID)
					}
					down[ev.ID] = true
				case online.Recover:
					if !down[ev.ID] {
						t.Fatalf("server %d recovered while up", ev.ID)
					}
					down[ev.ID] = false
				}
			}
			if sc.Failures != nil && st.Failures == 0 {
				t.Error("failure scenario generated no failures")
			}
			if name == "churn" && st.Drifts == 0 {
				t.Error("churn scenario generated no drifts")
			}

			again, st2, err := Trace(sc, 7)
			if err != nil {
				t.Fatal(err)
			}
			if st != st2 || len(again) != len(events) {
				t.Fatalf("same-seed regeneration differs: %+v vs %+v", st, st2)
			}
			for i := range events {
				a, b := events[i], again[i]
				if a.Time != b.Time || a.Kind != b.Kind || a.ID != b.ID {
					t.Fatalf("event %d differs between same-seed traces: %+v vs %+v", i, a, b)
				}
			}
		})
	}
}

func TestTraceDifferentSeedsDiffer(t *testing.T) {
	sc, _ := Builtin("flash")
	a, _, err := Trace(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Trace(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].Time != b[i].Time {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	base := func() *Scenario {
		sc, _ := Builtin("diurnal")
		return sc
	}
	cases := []struct {
		name   string
		break_ func(*Scenario)
	}{
		{"no name", func(sc *Scenario) { sc.Name = "" }},
		{"zero servers", func(sc *Scenario) { sc.Servers = 0 }},
		{"negative capacity", func(sc *Scenario) { sc.Capacity = -1 }},
		{"zero horizon", func(sc *Scenario) { sc.Horizon = 0 }},
		{"bad policy", func(sc *Scenario) { sc.Policy = "sorcery" }},
		{"bad dist", func(sc *Scenario) { sc.Utility.Dist = "cauchy" }},
		{"zero rate", func(sc *Scenario) { sc.Arrivals.BaseRate = 0 }},
		{"bad amplitude", func(sc *Scenario) { sc.Arrivals.Diurnal = &DiurnalSpec{Amplitude: 2, Period: 10} }},
		{"bad burst", func(sc *Scenario) { sc.Arrivals.Bursts = []BurstSpec{{Start: -1, Duration: 1, Multiplier: 2}} }},
		{"zero lifetime", func(sc *Scenario) { sc.Lifetime.Mean = 0 }},
		{"group too large", func(sc *Scenario) { sc.Failures = &FailureSpec{MTBF: 10, MTTR: 1, GroupSize: sc.Servers} }},
		{"negative solve cost", func(sc *Scenario) { sc.SolveCost = -1 }},
		{"negative initial threads", func(sc *Scenario) { sc.InitialThreads = -1 }},
	}
	for _, tc := range cases {
		sc := base()
		tc.break_(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"name":"x","servers":2,"capacity":10,"horizon":5,
		"arrivals":{"baseRate":1},"lifetime":{"mean":1},"utility":{"dist":"uniform"},
		"flashCrowd": true}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestDecodeTraceRoundTrip(t *testing.T) {
	src := `{
		"name": "recorded", "servers": 2, "capacity": 100,
		"events": [
			{"t": 1, "kind": "arrive", "id": 0, "v": 3, "w": 1},
			{"t": 2, "kind": "fail", "id": 1},
			{"t": 3, "kind": "drift", "id": 0, "v": 2, "w": 2},
			{"t": 4, "kind": "recover", "id": 1},
			{"t": 5, "kind": "depart", "id": 0}
		]
	}`
	sc, events, err := DecodeTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "recorded" || sc.Servers != 2 || sc.Horizon != 6 {
		t.Fatalf("bad envelope: %+v", sc)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events", len(events))
	}
	kinds := []online.EventKind{online.Arrive, online.Fail, online.Drift, online.Recover, online.Depart}
	for i, want := range kinds {
		if events[i].Kind != want {
			t.Errorf("event %d kind %v, want %v", i, events[i].Kind, want)
		}
	}
	// The recorded trace must actually replay.
	rep, err := Run(sc, RunOptions{Seed: 1, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Events != 5 || rep.Utility.FinalThreads != 0 {
		t.Fatalf("recorded replay: %+v", rep.Trace)
	}
}

func TestDecodeTraceErrors(t *testing.T) {
	for name, src := range map[string]string{
		"no events":     `{"servers":2,"capacity":10,"events":[]}`,
		"bad kind":      `{"servers":2,"capacity":10,"events":[{"t":1,"kind":"explode","id":0}]}`,
		"bad time":      `{"servers":2,"capacity":10,"events":[{"t":-1,"kind":"depart","id":0}]}`,
		"no servers":    `{"capacity":10,"events":[{"t":1,"kind":"depart","id":0}]}`,
		"unknown field": `{"servers":2,"capacity":10,"wat":1,"events":[{"t":1,"kind":"depart","id":0}]}`,
	} {
		if _, _, err := DecodeTrace(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
