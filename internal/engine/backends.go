package engine

import (
	"context"
	"errors"
	"fmt"

	"aa/internal/core"
	"aa/internal/rng"
	"aa/internal/telemetry"
)

// ErrBadRequest is wrapped by backend errors caused by a malformed
// request (nil instance, wrong payload type), as opposed to a solve
// failure.
var ErrBadRequest = errors.New("engine: bad request")

// The core backends: the paper's two algorithms on the workspace fast
// path, the refinement passes built on Algorithm 2, the exact
// branch-and-bound reference, and the four placement heuristics the
// figures compare against.
func init() {
	Register(Backend{
		Name: "assign2", Aliases: []string{"a2"}, Guaranteed: true,
		Doc:    "Algorithm 2: sorted placement onto the super-optimal linearization (the paper's recommended solver)",
		Handle: func(ctx ctxT, req *Request, resp *Response) error { return solveLinearized(ctx, req, resp, false) },
	})
	Register(Backend{
		Name: "assign1", Aliases: []string{"a1"}, Guaranteed: true,
		Doc:    "Algorithm 1: greedy placement onto the super-optimal linearization",
		Handle: func(ctx ctxT, req *Request, resp *Response) error { return solveLinearized(ctx, req, resp, true) },
	})
	Register(Backend{
		Name: "polish", Aliases: []string{"a2p"}, Guaranteed: true,
		Doc:    "Algorithm 2 followed by exact per-server concave re-allocation",
		Handle: handlePolish,
	})
	Register(Backend{
		Name: "ls", Guaranteed: true,
		Doc:    "Algorithm 2 followed by single-thread local-search moves (MaxMoves bounds the search)",
		Handle: handleLocalSearch,
	})
	Register(Backend{
		Name: "greedy", Aliases: []string{"gm"},
		Doc:    "greedy marginal-gain placement with per-server water-filling",
		Handle: handleGreedy,
	})
	Register(Backend{
		Name:   "exact",
		Doc:    "branch-and-bound exact optimum (small instances; MaxNodes bounds the search)",
		Handle: handleExact,
	})
	Register(Backend{
		Name:   "uu",
		Doc:    "heuristic: utility-ordered threads onto utilization-ordered servers",
		Handle: heuristicHandler(func(in *core.Instance, _ *rng.Rand) core.Assignment { return core.AssignUU(in) }),
	})
	Register(Backend{
		Name: "ur", Stochastic: true,
		Doc:    "heuristic: utility-ordered threads onto random servers (Seed drives the stream)",
		Handle: heuristicHandler(core.AssignUR),
	})
	Register(Backend{
		Name: "ru", Stochastic: true,
		Doc:    "heuristic: random threads onto utilization-ordered servers (Seed drives the stream)",
		Handle: heuristicHandler(core.AssignRU),
	})
	Register(Backend{
		Name: "rr", Stochastic: true,
		Doc:    "heuristic: random threads onto random servers (Seed drives the stream)",
		Handle: heuristicHandler(core.AssignRR),
	})
}

// ctxT keeps the registration table readable.
type ctxT = context.Context

// requireInstance validates the request's core instance.
func requireInstance(req *Request, resp *Response) (*core.Instance, error) {
	in := req.Instance
	if in == nil {
		return nil, fmt.Errorf("%w: backend %q needs a core instance", ErrBadRequest, resp.Backend)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// solveLinearized is the workspace fast path shared by assign1/assign2
// (and the refinement backends): super-optimal bound → linearization →
// assignment, with a cancellation check between stages, every scratch
// buffer borrowed from the core workspace pool. Zero heap allocations
// in steady state; results bit-identical to core.Assign1/core.Assign2.
func solveLinearized(ctx ctxT, req *Request, resp *Response, algo1 bool) error {
	in, err := requireInstance(req, resp)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := core.GetWorkspace()
	defer core.PutWorkspace(w)
	if telemetry.TraceEnabled() {
		// Parent the core.superopt/core.assign* stage spans to this
		// request (the engine.dispatch span carried by ctx).
		w.SetSpanContext(telemetry.SpanFromContext(ctx))
	}
	so := w.SuperOptimal(in)
	if err := ctx.Err(); err != nil {
		return err
	}
	gs := w.Linearize(in, so)
	if err := ctx.Err(); err != nil {
		return err
	}
	if algo1 {
		w.Assign1Linearized(in, gs, &resp.Assignment)
	} else {
		w.Assign2Linearized(in, gs, &resp.Assignment)
		if req.AltAssign1 {
			w.Assign1Linearized(in, gs, &resp.Alt)
		}
	}
	resp.Bound = so.Total
	resp.Lambda = so.Lambda
	finishUtility(req, resp)
	return nil
}

// finishUtility evaluates F (and Alt's F) on demand. It stays off the
// default path so a plain solve costs exactly what a Session solve
// does.
func finishUtility(req *Request, resp *Response) {
	if !req.WantUtility {
		return
	}
	resp.Utility = resp.Assignment.Utility(req.Instance)
	if req.AltAssign1 {
		resp.AltUtility = resp.Alt.Utility(req.Instance)
	}
}

func handlePolish(ctx ctxT, req *Request, resp *Response) error {
	if err := solveLinearized(ctx, req, resp, false); err != nil {
		return err
	}
	resp.Assignment = core.PolishAllocations(req.Instance, resp.Assignment)
	finishUtility(req, resp)
	return nil
}

func handleLocalSearch(ctx ctxT, req *Request, resp *Response) error {
	if err := solveLinearized(ctx, req, resp, false); err != nil {
		return err
	}
	a, moves := core.Improve(req.Instance, resp.Assignment, req.MaxMoves)
	resp.Assignment = a
	resp.Moves = moves
	finishUtility(req, resp)
	return nil
}

func handleGreedy(ctx ctxT, req *Request, resp *Response) error {
	in, err := requireInstance(req, resp)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	resp.Assignment = core.AssignGreedyMarginal(in)
	finishUtility(req, resp)
	return nil
}

func handleExact(ctx ctxT, req *Request, resp *Response) error {
	in, err := requireInstance(req, resp)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	a, err := core.BranchAndBound(in, req.MaxNodes)
	if err != nil {
		return err
	}
	resp.Assignment = a
	finishUtility(req, resp)
	return nil
}

// heuristicHandler adapts the placement heuristics; stochastic ones
// derive their stream from Request.Seed, so the same request always
// yields the same assignment regardless of scheduling.
func heuristicHandler(f func(*core.Instance, *rng.Rand) core.Assignment) Handler {
	return func(ctx ctxT, req *Request, resp *Response) error {
		in, err := requireInstance(req, resp)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		resp.Assignment = f(in, rng.New(req.Seed))
		finishUtility(req, resp)
		return nil
	}
}
