package hetero

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sync"

	"aa/internal/alloc"
	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/utility"
)

// Workspace holds the scratch one heterogeneous solve needs — the
// capped utility wrappers, the relaxation result, the service order and
// the residual capacities — so a series of solves (SkewSeries, the
// engine backend) reuses one arena instead of allocating per instance.
// A Workspace is single-goroutine, like core.Workspace.
type Workspace struct {
	capped   []capped
	fs       []utility.Func
	soAlloc  []float64
	soValue  []float64
	order    []int
	slopes   []float64
	residual []float64
	sorter   keyDescSorter
	allocSc  alloc.Scratch
}

// keyDescSorter stably orders an index slice by descending key without
// the per-call closure and reflection allocations of sort.SliceStable.
// Stable sorts produce a unique order for a given key, so this matches
// the previous sort.SliceStable output exactly.
type keyDescSorter struct {
	order []int
	key   []float64
}

func (s *keyDescSorter) Len() int           { return len(s.order) }
func (s *keyDescSorter) Less(a, b int) bool { return s.key[s.order[a]] > s.key[s.order[b]] }
func (s *keyDescSorter) Swap(a, b int)      { s.order[a], s.order[b] = s.order[b], s.order[a] }

// SuperOptimal is Workspace-pooled SuperOptimal: the returned slices
// are workspace memory, valid until the next call on this workspace.
func (w *Workspace) SuperOptimal(in *Instance) core.SuperOpt {
	n := in.N()
	maxCap := in.MaxCap()
	if cap(w.capped) < n {
		w.capped = make([]capped, n)
		w.fs = make([]utility.Func, n)
		w.soValue = make([]float64, n)
	}
	w.capped = w.capped[:n]
	w.fs = w.fs[:n]
	w.soValue = w.soValue[:n]
	for i, f := range in.Threads {
		c := f.Cap()
		if c > maxCap {
			c = maxCap
		}
		w.capped[i] = capped{f: f, c: c}
		w.fs[i] = &w.capped[i]
	}
	res := alloc.ConcaveWith(&w.allocSc, w.soAlloc, w.fs, in.TotalCap())
	w.soAlloc = res.Alloc
	so := core.SuperOpt{Alloc: res.Alloc, Value: w.soValue, Total: res.Total}
	for i := range w.fs {
		so.Value[i] = w.fs[i].Value(res.Alloc[i])
	}
	return so
}

// Assign is Workspace-pooled Assign: it fills out (growing its slices
// only when the instance is larger than any seen before) and returns
// the super-optimal bound it linearized from.
func (w *Workspace) Assign(in *Instance, out *Assignment) float64 {
	so := w.SuperOptimal(in)
	n, m := in.N(), in.M()

	if cap(w.order) < n {
		w.order = make([]int, n)
		w.slopes = make([]float64, n)
	}
	w.order = w.order[:n]
	w.slopes = w.slopes[:n]
	for i := range w.order {
		w.order[i] = i
		if so.Alloc[i] <= 0 {
			w.slopes[i] = 0
		} else {
			w.slopes[i] = so.Value[i] / so.Alloc[i]
		}
	}
	order := w.order
	w.sorter = keyDescSorter{order: order, key: so.Value}
	sort.Stable(&w.sorter)
	if n > m {
		w.sorter = keyDescSorter{order: order[m:], key: w.slopes}
		sort.Stable(&w.sorter)
	}

	if cap(w.residual) < m {
		w.residual = make([]float64, m)
	}
	w.residual = w.residual[:m]
	copy(w.residual, in.Caps)

	if cap(out.Server) < n {
		out.Server = make([]int, n)
		out.Alloc = make([]float64, n)
	}
	out.Server = out.Server[:n]
	out.Alloc = out.Alloc[:n]
	for _, i := range order {
		j := argmax(w.residual)
		amount := math.Min(so.Alloc[i], w.residual[j])
		out.Server[i] = j
		out.Alloc[i] = amount
		w.residual[j] -= amount
	}
	return so.Total
}

// wsPool recycles workspaces across engine requests; handlers may run
// concurrently on solver-pool workers, so per-call Get/Put rather than
// a package singleton.
var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

func init() {
	engine.Register(engine.Backend{
		Name: "hetero",
		Doc:  "heterogeneous-capacity Algorithm 2 (request Payload: *hetero.Instance)",
		Handle: func(ctx context.Context, req *engine.Request, resp *engine.Response) error {
			in, ok := req.Payload.(*Instance)
			if !ok {
				return fmt.Errorf("%w: hetero backend needs Payload of type *hetero.Instance", engine.ErrBadRequest)
			}
			if err := in.Validate(); err != nil {
				return fmt.Errorf("%w: %v", engine.ErrBadRequest, err)
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			ws := wsPool.Get().(*Workspace)
			defer wsPool.Put(ws)
			var out Assignment
			out.Server, out.Alloc = resp.Assignment.Server, resp.Assignment.Alloc
			resp.Bound = ws.Assign(in, &out)
			resp.Assignment.Server, resp.Assignment.Alloc = out.Server, out.Alloc
			if req.WantUtility {
				resp.Utility = out.Utility(in)
			}
			return nil
		},
	})
}
