package serveutil

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// Health is the liveness/readiness split behind /healthz and /readyz.
// Liveness answers "is the process up" and stays 200 for the process's
// whole life, including drain — a drain is healthy, and flipping
// liveness during one would make orchestrators kill a process that is
// busy finishing real work. Readiness answers "should new traffic come
// here" and flips to 503 the moment a drain starts, which is the signal
// the relay's prober (and any load balancer) uses to eject the node
// before its listener actually closes.
type Health struct {
	draining atomic.Bool
}

// StartDrain flips readiness to 503. Idempotent; never unflips — a
// draining process does not come back.
func (h *Health) StartDrain() { h.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (h *Health) Draining() bool { return h.draining.Load() }

// LivenessHandler serves /healthz: 200 "ok" for the life of the process.
func (h *Health) LivenessHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	}
}

// ReadinessHandler serves /readyz: 200 "ok" until StartDrain, then
// 503 "draining".
func (h *Health) ReadinessHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if h.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}
}
