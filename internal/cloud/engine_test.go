package cloud

import (
	"context"
	"errors"
	"testing"

	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/rng"
)

// TestEngineBackendMatchesDirect pins that the cloud adapter is exactly
// assign2 on the fleet's derived instance.
func TestEngineBackendMatchesDirect(t *testing.T) {
	f := RandomFleet(3, 64, 20, 0.3, 0.9, rng.New(21))
	in, err := f.Instance()
	if err != nil {
		t.Fatal(err)
	}
	want := core.Assign2(in)
	resp, err := engine.New(engine.Options{Check: true}).Solve(context.Background(),
		&engine.Request{Backend: "cloud", Payload: f, WantUtility: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Server {
		if resp.Assignment.Server[i] != want.Server[i] || resp.Assignment.Alloc[i] != want.Alloc[i] {
			t.Fatalf("customer %d: got (%d, %v), want (%d, %v)",
				i, resp.Assignment.Server[i], resp.Assignment.Alloc[i], want.Server[i], want.Alloc[i])
		}
	}
	if wantRev := want.Utility(in); resp.Utility != wantRev {
		t.Fatalf("revenue %v, want %v", resp.Utility, wantRev)
	}

	if _, err := engine.New(engine.Options{}).Solve(context.Background(),
		&engine.Request{Backend: "cloud", Payload: "not a fleet"}); !errors.Is(err, engine.ErrBadRequest) {
		t.Fatalf("bad payload returned %v, want ErrBadRequest", err)
	}
}
