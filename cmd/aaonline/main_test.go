package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunProducesTables(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-events", "40", "-costs", "0,10"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"policy summary", "full-resolve", "hybrid(0.83)", "incremental",
		"net value", "migrations",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	args := []string{"-events", "30", "-seed", "5", "-costs", "0"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

// The parallel grid must print the same tables as a single worker.
func TestRunSameOutputForAnyWorkerCount(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run([]string{"-events", "30", "-seed", "5", "-costs", "0,10", "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-events", "30", "-seed", "5", "-costs", "0,10", "-workers", "8"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("-workers=8 output differs from -workers=1:\n--- 1 ---\n%s\n--- 8 ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestRunTimeoutExpires(t *testing.T) {
	var out bytes.Buffer
	// The deadline expires while the first grid cells are in flight; the
	// remaining cells are cancelled and the error propagates.
	err := run([]string{"-events", "400", "-timeout", "1ms"}, &out)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-costs", "zero"}, &out); err == nil {
		t.Error("bad costs accepted")
	}
	if err := run([]string{"-events", "0"}, &out); err == nil {
		t.Error("zero events accepted")
	}
}

func TestParseCosts(t *testing.T) {
	costs, err := parseCosts(" 0, 1.5 ,20 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 || costs[1] != 1.5 {
		t.Errorf("costs %v", costs)
	}
}
