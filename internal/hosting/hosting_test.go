package hosting

import (
	"math"
	"testing"

	"aa/internal/core"
	"aa/internal/rng"
	"aa/internal/utility"
)

func demoDeployment() *Deployment {
	return &Deployment{
		Hosts:    2,
		Capacity: 100,
		Services: []Service{
			{Name: "api", Demand: 500, Revenue: 0.01, Curve: LinearCurve{PerUnit: 10}},
			{Name: "search", Demand: 200, Revenue: 0.05, Curve: SaturatingCurve{Max: 300, K: 40}},
			{Name: "batch", Demand: 1000, Revenue: 0.001, Curve: LinearCurve{PerUnit: 20}},
			{Name: "recs", Demand: 150, Revenue: 0.03, Curve: SaturatingCurve{Max: 200, K: 25}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := demoDeployment().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Deployment{
		{Hosts: 0, Capacity: 1, Services: []Service{{Curve: LinearCurve{1}}}},
		{Hosts: 1, Capacity: 0, Services: []Service{{Curve: LinearCurve{1}}}},
		{Hosts: 1, Capacity: 1},
		{Hosts: 1, Capacity: 1, Services: []Service{{Demand: -1, Curve: LinearCurve{1}}}},
		{Hosts: 1, Capacity: 1, Services: []Service{{Demand: 1}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid deployment accepted", i)
		}
	}
}

func TestCurves(t *testing.T) {
	lc := LinearCurve{PerUnit: 3}
	if lc.Rate(10) != 30 || lc.Rate(-1) != 0 {
		t.Errorf("linear curve: %v, %v", lc.Rate(10), lc.Rate(-1))
	}
	sc := SaturatingCurve{Max: 100, K: 50}
	if sc.Rate(50) != 50 {
		t.Errorf("saturating at K should be Max/2, got %v", sc.Rate(50))
	}
	if sc.Rate(0) != 0 {
		t.Errorf("saturating at 0 = %v", sc.Rate(0))
	}
	if sc.Rate(1e9) > 100 {
		t.Errorf("saturating exceeded Max")
	}
}

func TestRevenueUtilityIsValidAAUtility(t *testing.T) {
	d := demoDeployment()
	in, err := d.Instance()
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range in.Threads {
		if err := utility.Validate(f, 500, 1e-6); err != nil {
			t.Errorf("service %d (%s): %v", i, d.Services[i].Name, err)
		}
	}
}

func TestUtilityCapsAtDemand(t *testing.T) {
	// The api service saturates its 500 req/s demand at 50 units: beyond
	// that, more resource earns nothing.
	d := demoDeployment()
	in, _ := d.Instance()
	api := in.Threads[0]
	if got := api.Value(50); math.Abs(got-5.0) > 1e-9 {
		t.Errorf("api at 50 units = %v, want 5.0 $/s", got)
	}
	if got := api.Value(100); math.Abs(got-5.0) > 1e-9 {
		t.Errorf("api at 100 units = %v, want capped 5.0 $/s", got)
	}
}

func TestSolveRespectsModel(t *testing.T) {
	d := demoDeployment()
	in, _ := d.Instance()
	a := core.Assign2(in)
	if err := a.Validate(in, 1e-6); err != nil {
		t.Fatal(err)
	}
	so := core.SuperOptimal(in)
	if u := a.Utility(in); u < core.Alpha*so.Total-1e-9 {
		t.Errorf("assignment utility %v below guarantee %v", u, core.Alpha*so.Total)
	}
}

func TestSimulateRevenueTracksPrediction(t *testing.T) {
	d := demoDeployment()
	in, _ := d.Instance()
	a := core.Assign2(in)
	res, err := d.Simulate(a, 400, 1e9, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Revenue <= 0 {
		t.Fatal("no revenue earned")
	}
	// With effectively unbounded queues and stationary Poisson load the
	// measured revenue should be within a few percent of the model.
	if math.Abs(res.Revenue-res.Predicted) > 0.05*res.Predicted {
		t.Errorf("revenue %v vs predicted %v", res.Revenue, res.Predicted)
	}
}

func TestSimulateAADominatesUU(t *testing.T) {
	d := demoDeployment()
	in, _ := d.Instance()
	aa := core.Assign2(in)
	uu := core.AssignUU(in)
	resAA, err := d.Simulate(aa, 300, 1e9, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	resUU, err := d.Simulate(uu, 300, 1e9, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if resAA.Revenue < resUU.Revenue*0.98 {
		t.Errorf("AA revenue %v materially below UU revenue %v", resAA.Revenue, resUU.Revenue)
	}
}

func TestSimulateDropsUnderTinyQueues(t *testing.T) {
	d := &Deployment{
		Hosts:    1,
		Capacity: 10,
		Services: []Service{
			// Demand far above what the capacity can serve.
			{Name: "flood", Demand: 1000, Revenue: 1, Curve: LinearCurve{PerUnit: 1}},
		},
	}
	in, _ := d.Instance()
	a := core.Assign2(in)
	res, err := d.Simulate(a, 50, 100, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped[0] == 0 {
		t.Error("expected drops with demand 1000 and service rate 10")
	}
}

func TestSimulateRejectsInfeasibleAssignment(t *testing.T) {
	d := demoDeployment()
	bad := core.Assignment{
		Server: []int{0, 0, 0, 0},
		Alloc:  []float64{100, 100, 100, 100}, // 400 > C on host 0
	}
	if _, err := d.Simulate(bad, 10, 1e9, rng.New(1)); err == nil {
		t.Error("infeasible assignment accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	d := demoDeployment()
	in, _ := d.Instance()
	a := core.Assign2(in)
	r1, err := d.Simulate(a, 100, 1e9, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.Simulate(a, 100, 1e9, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Revenue != r2.Revenue {
		t.Errorf("same seed, different revenue: %v vs %v", r1.Revenue, r2.Revenue)
	}
}

func TestSimulateLatencyShrinksWithAllocation(t *testing.T) {
	// One service near saturation: more resource -> lower mean latency.
	d := &Deployment{
		Hosts:    1,
		Capacity: 100,
		Services: []Service{
			{Name: "svc", Demand: 90, Revenue: 1, Curve: LinearCurve{PerUnit: 1}},
		},
	}
	latencyAt := func(alloc float64) float64 {
		a := core.Assignment{Server: []int{0}, Alloc: []float64{alloc}}
		res, err := d.Simulate(a, 300, 1e9, rng.New(21))
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency(0, 300)
	}
	tight := latencyAt(92)  // barely above demand: queues persist
	roomy := latencyAt(100) // headroom absorbs bursts
	if !(roomy < tight) {
		t.Errorf("latency with headroom %v not below tight %v", roomy, tight)
	}
}

func TestMeanLatencyEdgeCases(t *testing.T) {
	res := SimResult{
		Served:    []float64{0, 0},
		MeanQueue: []float64{5, 0},
	}
	if l := res.MeanLatency(0, 10); !math.IsInf(l, 1) {
		t.Errorf("starved queueing service latency = %v, want +Inf", l)
	}
	if l := res.MeanLatency(1, 10); l != 0 {
		t.Errorf("idle service latency = %v, want 0", l)
	}
	if l := res.MeanLatency(0, 0); l != 0 {
		t.Errorf("zero-duration latency = %v, want 0", l)
	}
}

// Diurnal integration: demand shifts between a day phase (API-heavy) and
// a night phase (batch-heavy). Re-solving the assignment per phase must
// earn at least as much as freezing either phase's assignment for the
// whole day — the §VIII "utilities change over time" scenario on the
// hosting substrate.
func TestDiurnalRebalancing(t *testing.T) {
	day := &Deployment{
		Hosts:    2,
		Capacity: 100,
		Services: []Service{
			{Name: "api", Demand: 900, Revenue: 0.02, Curve: LinearCurve{PerUnit: 10}},
			{Name: "search", Demand: 300, Revenue: 0.03, Curve: SaturatingCurve{Max: 400, K: 30}},
			{Name: "batch", Demand: 50, Revenue: 0.001, Curve: LinearCurve{PerUnit: 20}},
			{Name: "reports", Demand: 20, Revenue: 0.001, Curve: LinearCurve{PerUnit: 20}},
		},
	}
	night := &Deployment{
		Hosts:    2,
		Capacity: 100,
		Services: []Service{
			{Name: "api", Demand: 60, Revenue: 0.02, Curve: LinearCurve{PerUnit: 10}},
			{Name: "search", Demand: 30, Revenue: 0.03, Curve: SaturatingCurve{Max: 400, K: 30}},
			{Name: "batch", Demand: 3000, Revenue: 0.001, Curve: LinearCurve{PerUnit: 20}},
			{Name: "reports", Demand: 2500, Revenue: 0.001, Curve: LinearCurve{PerUnit: 20}},
		},
	}
	const phaseSeconds = 200
	r := rng.New(61)

	solveFor := func(d *Deployment) core.Assignment {
		in, err := d.Instance()
		if err != nil {
			t.Fatal(err)
		}
		return core.Assign2(in)
	}
	simulate := func(d *Deployment, a core.Assignment, seed uint64) float64 {
		res, err := d.Simulate(a, phaseSeconds, 1e9, r.Split(seed))
		if err != nil {
			t.Fatal(err)
		}
		return res.Revenue
	}

	dayAssign := solveFor(day)
	nightAssign := solveFor(night)

	// Adaptive: right assignment per phase.
	adaptive := simulate(day, dayAssign, 1) + simulate(night, nightAssign, 2)
	// Frozen day assignment all 24h.
	frozenDay := simulate(day, dayAssign, 3) + simulate(night, dayAssign, 4)
	// Frozen night assignment all 24h.
	frozenNight := simulate(day, nightAssign, 5) + simulate(night, nightAssign, 6)

	if adaptive < frozenDay*(1-0.02) || adaptive < frozenNight*(1-0.02) {
		t.Errorf("re-solving per phase (%v) lost to frozen day (%v) / night (%v)",
			adaptive, frozenDay, frozenNight)
	}
	// And the gap should be material against at least one frozen policy —
	// otherwise the phases were not really different.
	worst := frozenDay
	if frozenNight < worst {
		worst = frozenNight
	}
	if adaptive < worst*1.05 {
		t.Logf("note: adaptive %v vs worst frozen %v — phases may be too similar", adaptive, worst)
	}
}
