package core

// Differential tests for the heap-based Assign1 fast path against the
// retained quadratic reference, and for the Workspace solve methods
// against their allocating package-level counterparts. The fast path's
// contract is byte-identity — same servers, same amounts, bit for bit —
// not merely equal utility.

import (
	"math"
	"testing"

	"aa/internal/rng"
	"aa/internal/utility"
)

func assertIdenticalAssignments(t *testing.T, label string, got, want Assignment) {
	t.Helper()
	if len(got.Server) != len(want.Server) || len(got.Alloc) != len(want.Alloc) {
		t.Fatalf("%s: assignment sizes differ: (%d,%d) vs (%d,%d)",
			label, len(got.Server), len(got.Alloc), len(want.Server), len(want.Alloc))
	}
	for i := range want.Server {
		if got.Server[i] != want.Server[i] || got.Alloc[i] != want.Alloc[i] {
			t.Fatalf("%s: thread %d: fast (server %d, alloc %v) != reference (server %d, alloc %v)",
				label, i, got.Server[i], got.Alloc[i], want.Server[i], want.Alloc[i])
		}
	}
}

// TestAssign1FastMatchesRefRandom drives both implementations over random
// mixed-family instances spanning thread-starved (n < m), balanced, and
// heavily oversubscribed shapes.
func TestAssign1FastMatchesRefRandom(t *testing.T) {
	base := rng.New(4011)
	for trial := 0; trial < 60; trial++ {
		r := base.Split(uint64(trial))
		m := 1 + r.Intn(8)
		n := 1 + r.Intn(60)
		in := randomInstance(r, n, m, 100)
		so := SuperOptimal(in)
		gs := Linearize(in, so)
		fast := Assign1Linearized(in, gs)
		ref := Assign1LinearizedRef(in, gs)
		assertIdenticalAssignments(t, "random", fast, ref)
	}
}

// TestAssign1FastMatchesRefAdversarialTies exercises the tie-breaking
// order directly with hand-built linearizations: duplicate g(ĉ) values,
// duplicate slopes, degenerate ĉ = 0 threads, threads pinned at exactly C,
// and more threads than total capacity serves (forcing the zero-residual
// endgame where every remaining thread gets nothing).
func TestAssign1FastMatchesRefAdversarialTies(t *testing.T) {
	const c = 10.0
	cases := []struct {
		name string
		m    int
		gs   []Linearized
	}{
		{"equal-uhat", 2, []Linearized{
			{UHat: 5, CHat: 4, C: c}, {UHat: 5, CHat: 4, C: c}, {UHat: 5, CHat: 4, C: c},
			{UHat: 5, CHat: 4, C: c}, {UHat: 5, CHat: 4, C: c}, {UHat: 5, CHat: 4, C: c},
		}},
		{"equal-slope-partials", 1, []Linearized{
			{UHat: 8, CHat: 8, C: c}, {UHat: 6, CHat: 6, C: c},
			{UHat: 9, CHat: 9, C: c}, {UHat: 3, CHat: 3, C: c},
		}},
		{"degenerate-chat-zero", 2, []Linearized{
			{UHat: 1, CHat: 0, C: c}, {UHat: 7, CHat: 9, C: c},
			{UHat: 2, CHat: 0, C: c}, {UHat: 7, CHat: 9, C: c},
		}},
		{"pinned-at-capacity", 3, []Linearized{
			{UHat: 4, CHat: c, C: c}, {UHat: 4, CHat: c, C: c}, {UHat: 4, CHat: c, C: c},
			{UHat: 4, CHat: c, C: c}, {UHat: 1, CHat: 2, C: c},
		}},
		{"zero-residual-endgame", 1, []Linearized{
			{UHat: 10, CHat: c, C: c}, {UHat: 3, CHat: 5, C: c},
			{UHat: 2, CHat: 5, C: c}, {UHat: 2, CHat: 5, C: c},
		}},
		{"thread-starved", 5, []Linearized{{UHat: 2, CHat: 3, C: c}}},
	}
	for _, tc := range cases {
		threads := make([]utility.Func, len(tc.gs))
		for i := range threads {
			threads[i] = utility.Linear{Slope: 1, C: c}
		}
		in := &Instance{M: tc.m, C: c, Threads: threads}
		fast := Assign1Linearized(in, tc.gs)
		ref := Assign1LinearizedRef(in, tc.gs)
		assertIdenticalAssignments(t, tc.name, fast, ref)
	}
}

// TestWorkspaceSolveMatchesPackageLevel runs the full pipeline through one
// reused Workspace (dirty buffers, varying sizes) and demands bit-identical
// results versus the allocating package-level calls at every stage.
func TestWorkspaceSolveMatchesPackageLevel(t *testing.T) {
	w := NewWorkspace()
	var a1, a2 Assignment // reused dirty across trials
	base := rng.New(77)
	for trial := 0; trial < 40; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 1+r.Intn(50), 1+r.Intn(6), 100)

		so := SuperOptimal(in)
		wso := w.SuperOptimal(in)
		if so.Total != wso.Total {
			t.Fatalf("trial %d: workspace SuperOptimal total %v != %v", trial, wso.Total, so.Total)
		}
		for i := range so.Alloc {
			if so.Alloc[i] != wso.Alloc[i] || so.Value[i] != wso.Value[i] {
				t.Fatalf("trial %d thread %d: workspace superopt (%v,%v) != (%v,%v)",
					trial, i, wso.Alloc[i], wso.Value[i], so.Alloc[i], so.Value[i])
			}
		}

		gs := Linearize(in, so)
		wgs := w.Linearize(in, wso)
		for i := range gs {
			if gs[i] != wgs[i] {
				t.Fatalf("trial %d thread %d: workspace linearization %+v != %+v", trial, i, wgs[i], gs[i])
			}
		}

		w.Assign1Linearized(in, wgs, &a1)
		assertIdenticalAssignments(t, "workspace-assign1", a1, Assign1Linearized(in, gs))
		w.Assign2Linearized(in, wgs, &a2)
		assertIdenticalAssignments(t, "workspace-assign2", a2, Assign2Linearized(in, gs))
	}
}

// TestAssignmentReset covers the buffer-reuse rules.
func TestAssignmentReset(t *testing.T) {
	var a Assignment
	a.Reset(3)
	if len(a.Server) != 3 || len(a.Alloc) != 3 {
		t.Fatalf("Reset(3) sized (%d,%d)", len(a.Server), len(a.Alloc))
	}
	for i := range a.Server {
		if a.Server[i] != -1 || a.Alloc[i] != 0 {
			t.Fatalf("Reset left thread %d at (%d,%v)", i, a.Server[i], a.Alloc[i])
		}
	}
	a.Server[1], a.Alloc[1] = 7, math.Pi
	prev := &a.Server[0]
	a.Reset(2)
	if len(a.Server) != 2 || a.Server[1] != -1 || a.Alloc[1] != 0 {
		t.Fatal("Reset(2) did not reinitialize the shrunk assignment")
	}
	if &a.Server[0] != prev {
		t.Fatal("Reset(2) reallocated despite sufficient capacity")
	}
	a.Reset(100)
	if len(a.Server) != 100 || a.Server[99] != -1 {
		t.Fatal("Reset(100) did not grow correctly")
	}
}
