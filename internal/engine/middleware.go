package engine

import (
	"context"
	"math"
	"time"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/telemetry"
)

// Engine-wide latency histogram; the per-backend request/failure
// counters live on the Backend (created at Register time). All of it is
// recorded only when telemetry is enabled, keeping the disabled path
// allocation- and syscall-free.
var engineSolveLat = telemetry.Default.Histogram("aa_engine_solve_latency_seconds", telemetry.LatencyBuckets)

// withTelemetry is the outermost layer: it counts every request —
// including ones that die on cancellation before dispatch — into the
// resolved backend's aa_engine_requests_total / failures counters and
// observes end-to-end latency. When tracing is on it opens the
// engine.solve root span for the request — a child of whatever span the
// incoming ctx carries (the HTTP span in aaserve, the replay event
// span, the CLI process root) — and re-wraps ctx so every inner layer
// (dispatch, the solver stages, checking) parents under it.
func withTelemetry(next Handler) Handler {
	return func(ctx context.Context, req *Request, resp *Response) error {
		if !telemetry.Enabled() {
			return next(ctx, req, resp)
		}
		bk := req.bk
		bk.requests.Inc()
		start := time.Now()
		var span telemetry.Span
		if telemetry.TraceEnabled() {
			attrs := make([]telemetry.Attr, 0, 5)
			attrs = append(attrs, telemetry.String("backend", bk.Name))
			if in := req.Instance; in != nil {
				attrs = append(attrs, telemetry.Int("n", in.N()), telemetry.Int("m", in.M))
			}
			if req.Seed != 0 {
				attrs = append(attrs, telemetry.Uint64("seed", req.Seed))
			}
			attrs = append(attrs, telemetry.Bool("check", req.Check))
			ctx, span = telemetry.StartSpanCtx(ctx, "engine.solve", attrs...)
		}
		err := next(ctx, req, resp)
		engineSolveLat.Observe(time.Since(start).Seconds())
		span.AddAttrs(telemetry.Bool("ok", err == nil))
		span.End()
		if err != nil {
			bk.failures.Inc()
		}
		return err
	}
}

// withCancel fails a request whose context is already dead before any
// work starts. Backends additionally check ctx between expensive
// stages, so this is the fast-fail front door, not the only check.
func withCancel(next Handler) Handler {
	return func(ctx context.Context, req *Request, resp *Response) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return next(ctx, req, resp)
	}
}

// withCheck wraps dispatch with post-solve verification: feasibility
// plus the ratio report against the super-optimal bound — the α
// guarantee for backends that carry it, the F ≤ F̂ upper bound for
// those that don't. It runs when the engine option, the request, or
// the process-wide check.Enable switch asks for it, and fails the
// request with an error wrapping check.ErrInfeasible / check.ErrRatio
// instead of returning a bogus result.
func withCheck(force bool) Middleware {
	return func(next Handler) Handler {
		return func(ctx context.Context, req *Request, resp *Response) error {
			err := next(ctx, req, resp)
			if err != nil || !(force || req.Check || check.Enabled()) {
				return err
			}
			if !telemetry.TraceEnabled() {
				return verify(req, resp)
			}
			_, span := telemetry.StartSpanCtx(ctx, "engine.check")
			verr := verify(req, resp)
			span.AddAttrs(telemetry.Bool("ok", verr == nil))
			span.End()
			return verr
		}
	}
}

// verify checks a finished core-instance response; adapter backends
// (nil Instance) verify inside their own domain instead.
func verify(req *Request, resp *Response) error {
	in := req.Instance
	if in == nil {
		return nil
	}
	if err := check.Feasible(in, resp.Assignment, check.DefaultEps); err != nil {
		return err
	}
	rep := ratioFor(resp.Bound, req, resp.Assignment)
	if req.bk.Guaranteed {
		if err := rep.CheckAlpha(0); err != nil {
			return err
		}
	} else if err := rep.CheckBound(0); err != nil {
		return err
	}
	if !req.AltAssign1 {
		return nil
	}
	// The alternate Algorithm 1 result rides the same guarantee.
	if err := check.Feasible(in, resp.Alt, check.DefaultEps); err != nil {
		return err
	}
	return ratioFor(resp.Bound, req, resp.Alt).CheckAlpha(0)
}

// ratioFor reuses the backend's own F̂ when it computed one, and pays
// for a fresh super-optimal bound only for backends that don't.
func ratioFor(bound float64, req *Request, a core.Assignment) check.RatioReport {
	if !math.IsNaN(bound) {
		return check.RatioAgainst(bound, req.Instance, a)
	}
	return check.Ratio(req.Instance, a)
}
