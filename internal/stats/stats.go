// Package stats provides the small set of summary statistics the
// experiment harness needs to aggregate trial results: means, deviations,
// normal-approximation confidence intervals and quantiles.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary with N = 0.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(n-1))
	}
	return s
}

// Stderr returns the standard error of the mean.
func (s Summary) Stderr() float64 {
	if s.N <= 1 {
		return 0
	}
	return s.Stddev / math.Sqrt(float64(s.N))
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval for the mean.
func (s Summary) CI95() float64 { return 1.96 * s.Stderr() }

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts the input.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of strictly positive xs; it returns
// 0 if any value is nonpositive or the sample is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// RatioOfMeans returns mean(num)/mean(den), the estimator the paper's
// figures use for "ratio of Algorithm 2's utility versus X": both sides
// are averaged over trials before dividing. Returns 0 when the
// denominator mean is 0.
func RatioOfMeans(num, den []float64) float64 {
	dm := Mean(den)
	if dm == 0 {
		return 0
	}
	return Mean(num) / dm
}
