package cliutil

import (
	"flag"
	"time"

	"aa/internal/cache"
)

// CacheFlags is the shared flag surface for the engine's solve-result
// cache, used by the binaries that run an engine (aaserve, aareplay)
// and by the relay's own exact-hit cache (aarelay):
//
//	-cache        off | memory | shared (default off)
//	-cache-size   max entries (default cache.DefaultSize)
//	-cache-ttl    entry time-to-live, 0 = no expiry
//	-cache-warm-k warm-start repair bound, 0 disables warm starts
//	-cache-key    cluster secret keying shared-mode fingerprints
type CacheFlags struct {
	Mode  string
	Size  int
	TTL   time.Duration
	WarmK int
	Key   string
}

// AddFlags registers the cache flags on fs with the shared wording.
func (c *CacheFlags) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Mode, "cache", "off",
		"solve-result cache mode: off, memory (in-process LRU, unkeyed hashing) or shared (keyed hashing for the relay tier)")
	fs.IntVar(&c.Size, "cache-size", cache.DefaultSize,
		"max cached solve results (memory/shared modes)")
	fs.DurationVar(&c.TTL, "cache-ttl", 0,
		"cached solve result time-to-live; 0 means entries never expire")
	fs.IntVar(&c.WarmK, "cache-warm-k", 8,
		"warm-start bound: repair from a cached solve differing by at most this many threads; 0 disables warm starts")
	fs.StringVar(&c.Key, "cache-key", "",
		"cluster secret keying shared-mode fingerprint hashing; empty means a random per-process key (shared mode) or unkeyed hashing (memory mode)")
}

// Build constructs the cache the flags describe. Mode "off" returns the
// no-op cache, which the engine recognizes and leaves uninstalled.
func (c *CacheFlags) Build() (cache.Cache, error) {
	return cache.New(cache.Config{
		Mode: cache.Mode(c.Mode),
		Size: c.Size,
		TTL:  c.TTL,
		Key:  cache.KeyFromString(c.Key),
	})
}
