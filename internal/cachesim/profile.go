package cachesim

import (
	"fmt"

	"aa/internal/utility"
)

// Profile is a thread's measured hit-rate curve: HitRate[w] is the hit
// rate with w ways, for w = 0..len(HitRate)-1. By the LRU stack
// (inclusion) property the curve is nondecreasing in w.
type Profile struct {
	HitRate  []float64
	Accesses int
}

// ProfileThread measures a thread's hit rate at every way count
// 0..cfg.Ways by running its trace against fresh partitions — the
// offline profiling step the paper assumes ("utility functions can be
// determined by measuring the performance of individual threads").
func ProfileThread(cfg Config, trace []uint64) (Profile, error) {
	if len(trace) == 0 {
		return Profile{}, ErrEmptyTrace
	}
	p := Profile{
		HitRate:  make([]float64, cfg.Ways+1),
		Accesses: len(trace),
	}
	for w := 0; w <= cfg.Ways; w++ {
		hits, accesses, err := SimulateHits(cfg, w, trace)
		if err != nil {
			return Profile{}, err
		}
		p.HitRate[w] = float64(hits) / float64(accesses)
	}
	return p, nil
}

// ProfileThreadSampled estimates the hit-rate curve from a sampled
// subset of cache sets — the set-sampling technique of the paper's cited
// Qureshi et al. hardware monitors (UMON-DSS): simulating 1-in-`stride`
// sets costs proportionally less while the per-way hit rates stay close,
// because the working set spreads uniformly over sets. Accesses mapping
// to unsampled sets are skipped; the returned profile is over the same
// way counts as the full profiler.
func ProfileThreadSampled(cfg Config, trace []uint64, stride int) (Profile, error) {
	if len(trace) == 0 {
		return Profile{}, ErrEmptyTrace
	}
	if stride < 1 {
		return Profile{}, fmt.Errorf("cachesim: sampling stride %d", stride)
	}
	if stride == 1 {
		return ProfileThread(cfg, trace)
	}
	// Keep only accesses whose set index is ≡ 0 (mod stride); remap them
	// onto a proportionally smaller cache so the occupancy per sampled
	// set is preserved.
	sampledSets := cfg.Sets / stride
	if sampledSets < 1 {
		return Profile{}, fmt.Errorf("cachesim: stride %d leaves no sets", stride)
	}
	small := Config{Sets: sampledSets, Ways: cfg.Ways, LineSize: cfg.LineSize}
	var sampled []uint64
	for _, addr := range trace {
		line := addr / uint64(cfg.LineSize)
		set := line % uint64(cfg.Sets)
		if set%uint64(stride) != 0 {
			continue
		}
		// Remap: compress the set index and keep the tag bits.
		newLine := (line/uint64(cfg.Sets))*uint64(sampledSets) + set/uint64(stride)
		sampled = append(sampled, newLine*uint64(cfg.LineSize))
	}
	if len(sampled) == 0 {
		return Profile{}, fmt.Errorf("cachesim: sampling stride %d captured no accesses", stride)
	}
	p, err := ProfileThread(small, sampled)
	if err != nil {
		return Profile{}, err
	}
	p.Accesses = len(trace)
	return p, nil
}

// MissRate returns 1 − HitRate[w].
func (p Profile) MissRate(w int) float64 { return 1 - p.HitRate[w] }

// Monotone reports whether the measured curve is nondecreasing (the LRU
// stack property predicts it always is; a violation indicates a
// simulator bug).
func (p Profile) Monotone() bool {
	for i := 1; i < len(p.HitRate); i++ {
		if p.HitRate[i] < p.HitRate[i-1]-1e-12 {
			return false
		}
	}
	return true
}

// ConcaveEnvelope returns the upper concave envelope of the curve: the
// smallest concave nondecreasing curve dominating it. Smooth working-set
// curves are already concave and unchanged; cliff-shaped curves (e.g.
// sequential loops) get bridged by their chords. AA's model requires
// concavity, and the envelope is the standard surrogate: any allocation
// chosen on the envelope can be rounded to an envelope vertex, where
// envelope and true curve agree.
func (p Profile) ConcaveEnvelope() []float64 {
	ys := p.HitRate
	n := len(ys)
	if n <= 2 {
		return append([]float64(nil), ys...)
	}
	// Upper hull by a monotone stack over points (w, ys[w]).
	type pt struct{ x, y float64 }
	hull := make([]pt, 0, n)
	for w := 0; w < n; w++ {
		q := pt{float64(w), ys[w]}
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Remove b if it lies below chord a—q (keeps hull concave).
			if (b.y-a.y)*(q.x-a.x) <= (q.y-a.y)*(b.x-a.x) {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, q)
	}
	// Interpolate the hull back onto integer way counts.
	out := make([]float64, n)
	seg := 0
	for w := 0; w < n; w++ {
		x := float64(w)
		for seg+1 < len(hull) && hull[seg+1].x < x {
			seg++
		}
		if seg+1 >= len(hull) || hull[seg].x == x {
			out[w] = hull[min(seg, len(hull)-1)].y
			continue
		}
		a, b := hull[seg], hull[seg+1]
		t := (x - a.x) / (b.x - a.x)
		out[w] = a.y + t*(b.y-a.y)
	}
	// The envelope of a monotone curve is monotone; guard float noise.
	for w := 1; w < n; w++ {
		if out[w] < out[w-1] {
			out[w] = out[w-1]
		}
	}
	return out
}

// HullVertices returns the way counts where the upper concave envelope
// touches the measured curve — the allocations at which the concave
// surrogate is exact. Any fractional allocation on the envelope is a
// convex combination of two adjacent vertices, so rounding to vertices
// never pays for envelope optimism (e.g. a sequential loop has vertices
// only at 0 and its cliff: it should get all of the cliff or nothing).
func (p Profile) HullVertices() []int {
	env := p.ConcaveEnvelope()
	var out []int
	for w := range p.HitRate {
		if p.HitRate[w] >= env[w]-1e-9 {
			out = append(out, w)
		}
	}
	return out
}

// ThroughputModel converts hit rates into a throughput (accesses per
// cycle) using a simple in-order memory model: a hit costs HitCycles, a
// miss costs HitCycles + MissPenalty.
type ThroughputModel struct {
	HitCycles   float64 // cycles per hit (>= 1)
	MissPenalty float64 // extra cycles per miss
	Weight      float64 // relative importance/instruction rate of the thread
}

// DefaultModel is a typical LLC model: 1-cycle hit, 40-cycle miss
// penalty, unit weight.
var DefaultModel = ThroughputModel{HitCycles: 1, MissPenalty: 40, Weight: 1}

// Throughput returns Weight · accesses-per-cycle at the given hit rate.
func (m ThroughputModel) Throughput(hitRate float64) float64 {
	cycles := m.HitCycles + (1-hitRate)*m.MissPenalty
	return m.Weight / cycles
}

// Utility converts a profile into a concave AA utility over the way
// domain [0, ways]: the concave envelope of the throughput-vs-ways
// curve, linearly interpolated between integer way counts. The returned
// function's Cap is float64(len(HitRate)-1).
func (p Profile) Utility(m ThroughputModel) (utility.Func, error) {
	n := len(p.HitRate)
	if n < 2 {
		return nil, fmt.Errorf("cachesim: profile has %d points", n)
	}
	raw := make([]float64, n)
	for w := 0; w < n; w++ {
		raw[w] = m.Throughput(p.HitRate[w])
	}
	// Throughput is increasing in hit rate, so monotonicity carries
	// over; concavity does not (throughput is convex in hit rate), so
	// take the envelope in throughput space.
	tp := Profile{HitRate: raw}
	env := tp.ConcaveEnvelope()
	xs := make([]float64, n)
	for w := range xs {
		xs[w] = float64(w)
	}
	return utility.NewPiecewiseLinear(xs, env)
}
