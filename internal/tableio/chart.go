package tableio

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders one or more series as an ASCII line chart — the text
// stand-in for the paper's figures. X positions are the shared sweep
// parameter; each series is drawn with its own rune.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Height int // plot rows (default 12)
	Width  int // plot columns (default: one per x value, min 40)

	xs     []float64
	series []chartSeries
}

type chartSeries struct {
	name   string
	marker rune
	ys     []float64
}

// NewChart creates a chart over the given x positions.
func NewChart(title, xLabel, yLabel string, xs []float64) *Chart {
	return &Chart{
		Title:  title,
		XLabel: xLabel,
		YLabel: yLabel,
		Height: 12,
		xs:     append([]float64(nil), xs...),
	}
}

// markers used for successive series.
var chartMarkers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// AddSeries appends a named series; ys must align with the chart's xs.
// It panics on length mismatch (a harness programming error).
func (c *Chart) AddSeries(name string, ys []float64) {
	if len(ys) != len(c.xs) {
		panic(fmt.Sprintf("tableio: series %q has %d points, chart has %d", name, len(ys), len(c.xs)))
	}
	marker := chartMarkers[len(c.series)%len(chartMarkers)]
	c.series = append(c.series, chartSeries{name: name, marker: marker, ys: append([]float64(nil), ys...)})
}

// WriteASCII renders the chart.
func (c *Chart) WriteASCII(w io.Writer) error {
	if len(c.xs) == 0 || len(c.series) == 0 {
		_, err := io.WriteString(w, c.Title+" (no data)\n")
		return err
	}
	height := c.Height
	if height < 2 {
		height = 12
	}
	width := c.Width
	if width <= 0 {
		width = 2 * len(c.xs)
		if width < 40 {
			width = 40
		}
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for _, y := range s.ys {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	xLo, xHi := c.xs[0], c.xs[len(c.xs)-1]
	if xHi == xLo {
		xHi = xLo + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for _, s := range c.series {
		for k, y := range s.ys {
			col := int(float64(width-1) * (c.xs[k] - xLo) / (xHi - xLo))
			row := int(math.Round(float64(height-1) * (hi - y) / (hi - lo)))
			grid[row][col] = s.marker
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	yLoLabel := fmt.Sprintf("%.3g", lo)
	yHiLabel := fmt.Sprintf("%.3g", hi)
	labelWidth := len(yLoLabel)
	if len(yHiLabel) > labelWidth {
		labelWidth = len(yHiLabel)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = pad(yHiLabel, labelWidth)
		case height - 1:
			label = pad(yLoLabel, labelWidth)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", labelWidth))
	b.WriteString(" +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", labelWidth))
	b.WriteString("  ")
	xAxis := fmt.Sprintf("%-10s%s%10s", fmt.Sprintf("%.3g", xLo), pad(c.XLabel, width-20), fmt.Sprintf("%.3g", xHi))
	b.WriteString(xAxis)
	b.WriteByte('\n')
	// Legend.
	for _, s := range c.series {
		fmt.Fprintf(&b, "  %c %s\n", s.marker, s.name)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "  (y: %s)\n", c.YLabel)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the ASCII form.
func (c *Chart) String() string {
	var b strings.Builder
	_ = c.WriteASCII(&b)
	return b.String()
}

// pad centers s in a field of the given width (left-aligned if the field
// is too small).
func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	right := width - len(s) - left
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", right)
}
