package check

import (
	"math"
	"testing"

	"aa/internal/alloc"
	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
	"aa/internal/utility"
)

// FuzzFeasibleConcave fuzzes the λ-bisection allocator with thread sets
// drawn from the gen figure corpus plus one adversarially steep linear
// thread (the shape that used to drive the doubling search past its
// 1e18 ceiling and return an over-budget allocation), asserting the
// alloc-level invariants on every output.
func FuzzFeasibleConcave(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(0), 0.5)
	f.Add(uint64(7), uint8(6), uint8(2), 0.1)
	f.Add(uint64(42), uint8(1), uint8(3), 3.0)
	f.Add(uint64(9), uint8(5), uint8(1), 1e9)
	f.Fuzz(func(t *testing.T, seed uint64, n, distPick uint8, budgetScale float64) {
		if math.IsNaN(budgetScale) || math.IsInf(budgetScale, 0) ||
			budgetScale <= 0 || budgetScale > 1e12 {
			t.Skip()
		}
		const c = 100.0
		r := rng.New(seed)
		workloads := FigureWorkloads()
		dist := workloads[int(distPick)%len(workloads)].Dist
		fs := make([]utility.Func, 0, int(n%8)+2)
		for i := 0; i < 1+int(n%8); i++ {
			fn, err := gen.Thread(dist, c, r)
			if err != nil {
				t.Skip()
			}
			fs = append(fs, fn)
		}
		// The steep thread: slopes up to ~2^40 × budgetScale reach past
		// the doubling ceiling and exercise the renormalization path.
		fs = append(fs, utility.Linear{Slope: math.Ldexp(1+budgetScale, 40), C: c})
		budget := budgetScale * c
		res := alloc.Concave(fs, budget)
		if err := Allocation(fs, res.Alloc, budget, DefaultEps); err != nil {
			t.Fatalf("budget %v, %d threads: %v", budget, len(fs), err)
		}
	})
}

// FuzzAssign2Parallel fuzzes the parallel Assign2 path against the
// serial one on gen instances: same servers, same allocation bits, for
// every thread, on every input — the byte-identity contract of the
// chunked-sort + sharded-heap rewrite (core/parallel.go). Shapes reach
// past the white-box tests' fixed sizes: m and n both vary, including
// m > n and single-server instances.
func FuzzAssign2Parallel(f *testing.F) {
	f.Add(uint64(1), uint16(8), uint16(40), uint8(0))
	f.Add(uint64(5), uint16(1), uint16(200), uint8(2))
	f.Add(uint64(17), uint16(300), uint16(9), uint8(4))
	f.Add(uint64(23), uint16(64), uint16(1000), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, m, n uint16, distPick uint8) {
		const c = 100.0
		r := rng.New(seed)
		workloads := FigureWorkloads()
		in, err := gen.Instance(workloads[int(distPick)%len(workloads)].Dist,
			1+int(m%512), c, 1+int(n%4096), r)
		if err != nil {
			t.Skip()
		}
		so := core.SuperOptimal(in)
		gs := core.Linearize(in, so)
		serial := core.Assign2Linearized(in, gs)
		par := core.Assign2LinearizedParallel(in, gs)
		for i := range serial.Server {
			if par.Server[i] != serial.Server[i] ||
				math.Float64bits(par.Alloc[i]) != math.Float64bits(serial.Alloc[i]) {
				t.Fatalf("thread %d: parallel Assign2 (%d,%v) != serial (%d,%v)",
					i, par.Server[i], par.Alloc[i], serial.Server[i], serial.Alloc[i])
			}
		}
	})
}

// FuzzDifferentialAssign fuzzes the assignment pipeline on small gen
// instances: Assign1/Assign2 must be feasible and honor α·F̂ ≤ F ≤ F̂,
// neither may beat the branch-and-bound exact optimum, the heap-based
// Assign1 must match the quadratic reference bit for bit, and the pruned
// λ-bisection must agree with the unpruned reference water-filling.
func FuzzDifferentialAssign(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(5), uint8(0))
	f.Add(uint64(3), uint8(3), uint8(6), uint8(2))
	f.Add(uint64(11), uint8(1), uint8(1), uint8(4))
	f.Add(uint64(99), uint8(2), uint8(4), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, m, n, distPick uint8) {
		const c = 100.0
		r := rng.New(seed)
		workloads := FigureWorkloads()
		in, err := gen.Instance(workloads[int(distPick)%len(workloads)].Dist,
			1+int(m%3), c, 1+int(n%6), r)
		if err != nil {
			t.Skip()
		}
		so := core.SuperOptimal(in)
		gs := core.Linearize(in, so)
		a1 := core.Assign1Linearized(in, gs)
		a2 := core.Assign2Linearized(in, gs)
		refA1 := core.Assign1LinearizedRef(in, gs)
		for i := range refA1.Server {
			if a1.Server[i] != refA1.Server[i] || a1.Alloc[i] != refA1.Alloc[i] {
				t.Fatalf("thread %d: fast Assign1 (%d,%v) != reference (%d,%v)",
					i, a1.Server[i], a1.Alloc[i], refA1.Server[i], refA1.Alloc[i])
			}
		}
		// gen threads are capped at C, so SuperOptimal's capping wrapper is
		// a no-op and ConcaveRef over the raw threads is the same problem.
		refSO := alloc.ConcaveRef(in.Threads, float64(in.M)*in.C)
		if d := math.Abs(so.Total - refSO.Total); d > 1e-7*(1+math.Abs(refSO.Total)) {
			t.Fatalf("pruned super-optimal total %v != unpruned reference %v", so.Total, refSO.Total)
		}
		for _, tc := range []struct {
			label string
			a     core.Assignment
		}{{"a1", a1}, {"a2", a2}} {
			if err := Feasible(in, tc.a, DefaultEps); err != nil {
				t.Fatalf("%s: %v", tc.label, err)
			}
			if err := RatioAgainst(so.Total, in, tc.a).CheckAlpha(0); err != nil {
				t.Fatalf("%s: %v", tc.label, err)
			}
		}
		exact, err := core.BranchAndBound(in, 0)
		if err != nil {
			t.Skip() // node budget exhausted: nothing to compare against
		}
		if err := Feasible(in, exact, DefaultEps); err != nil {
			t.Fatalf("exact: %v", err)
		}
		fExact := exact.Utility(in)
		tol := 1e-6 * (1 + math.Abs(fExact))
		if u := a1.Utility(in); u > fExact+tol {
			t.Fatalf("a1 utility %v beats the exact optimum %v", u, fExact)
		}
		if u := a2.Utility(in); u > fExact+tol {
			t.Fatalf("a2 utility %v beats the exact optimum %v", u, fExact)
		}
	})
}
