package core

import (
	"math"
	"testing"
	"time"

	"aa/internal/rng"
	"aa/internal/utility"
)

// randomInstance builds a random AA instance with mixed utility families,
// n threads and m servers of capacity c.
func randomInstance(r *rng.Rand, n, m int, c float64) *Instance {
	threads := make([]utility.Func, n)
	for i := range threads {
		switch r.Intn(5) {
		case 0:
			threads[i] = utility.Linear{Slope: r.Uniform(0.1, 3), C: c}
		case 1:
			threads[i] = utility.CappedLinear{Slope: r.Uniform(0.1, 3), Knee: r.Uniform(0.1, c), C: c}
		case 2:
			threads[i] = utility.Log{Scale: r.Uniform(0.5, 5), Shift: r.Uniform(1, c/2), C: c}
		case 3:
			threads[i] = utility.SatExp{Scale: r.Uniform(0.5, 5), K: r.Uniform(c/20, c/2), C: c}
		default:
			threads[i] = utility.Power{Scale: r.Uniform(0.5, 2), Beta: r.Uniform(0.3, 1), C: c}
		}
	}
	return &Instance{M: m, C: c, Threads: threads}
}

func assertFeasible(t *testing.T, in *Instance, a Assignment, label string) {
	t.Helper()
	if err := a.Validate(in, 1e-9); err != nil {
		t.Fatalf("%s produced infeasible assignment: %v", label, err)
	}
}

func TestAssign1Feasible(t *testing.T) {
	base := rng.New(21)
	for trial := 0; trial < 30; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 1+r.Intn(25), 1+r.Intn(6), 100)
		assertFeasible(t, in, Assign1(in), "Assign1")
	}
}

func TestAssign2Feasible(t *testing.T) {
	base := rng.New(22)
	for trial := 0; trial < 30; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 1+r.Intn(25), 1+r.Intn(6), 100)
		assertFeasible(t, in, Assign2(in), "Assign2")
	}
}

func TestAssign2FewerThreadsThanServers(t *testing.T) {
	// n < m: every thread should land alone and get min(ĉ, C).
	in := &Instance{
		M: 5,
		C: 100,
		Threads: []utility.Func{
			utility.Power{Scale: 1, Beta: 0.5, C: 100},
			utility.Log{Scale: 2, Shift: 10, C: 100},
		},
	}
	a := Assign2(in)
	assertFeasible(t, in, a, "Assign2")
	if a.Server[0] == a.Server[1] {
		t.Errorf("two threads share a server despite m=5")
	}
	so := SuperOptimal(in)
	if u := a.Utility(in); math.Abs(u-so.Total) > 1e-6*(1+so.Total) {
		t.Errorf("n<m utility %v, want super-optimal %v", u, so.Total)
	}
}

func TestAssign2SingleServerMatchesConcaveOptimum(t *testing.T) {
	// With m=1 the super-optimal allocation IS the optimal allocation, and
	// Algorithm 2 should hand it out exactly (all ĉ_i fit by definition).
	r := rng.New(23)
	in := randomInstance(r, 10, 1, 100)
	a := Assign2(in)
	assertFeasible(t, in, a, "Assign2")
	so := SuperOptimal(in)
	if u := a.Utility(in); u < so.Total*(1-1e-9)-1e-9 {
		t.Errorf("m=1 utility %v < super-optimal %v", u, so.Total)
	}
}

func TestTightnessExampleTheoremV17(t *testing.T) {
	// Theorem V.17: 3 threads, 2 servers with C=1. Threads 1,2 have
	// f(x) = min(2x, 1); thread 3 has f(x) = x. The greedy can end at
	// 2.5 while the optimum is 3 — ratio 5/6, still above α.
	in := &Instance{
		M: 2,
		C: 1,
		Threads: []utility.Func{
			utility.CappedLinear{Slope: 2, Knee: 0.5, C: 1},
			utility.CappedLinear{Slope: 2, Knee: 0.5, C: 1},
			utility.Linear{Slope: 1, C: 1},
		},
	}
	so := SuperOptimal(in)
	// Super-optimal allocation: [1/2, 1/2, 1] with F̂ = 3.
	want := []float64{0.5, 0.5, 1}
	for i, w := range want {
		if math.Abs(so.Alloc[i]-w) > 1e-6 {
			t.Errorf("ĉ_%d = %v, want %v", i, so.Alloc[i], w)
		}
	}
	if math.Abs(so.Total-3) > 1e-6 {
		t.Errorf("F̂ = %v, want 3", so.Total)
	}

	opt, err := Exhaustive(in)
	if err != nil {
		t.Fatal(err)
	}
	if u := opt.Utility(in); math.Abs(u-3) > 1e-6 {
		t.Errorf("optimal utility = %v, want 3", u)
	}

	for _, algo := range []struct {
		name string
		run  func(*Instance) Assignment
	}{{"Assign1", Assign1}, {"Assign2", Assign2}} {
		a := algo.run(in)
		assertFeasible(t, in, a, algo.name)
		u := a.Utility(in)
		if u < Alpha*3-1e-6 {
			t.Errorf("%s utility %v below α·OPT = %v", algo.name, u, Alpha*3)
		}
		if u > 3+1e-6 {
			t.Errorf("%s utility %v exceeds optimum", algo.name, u)
		}
	}
}

// The central guarantee: both algorithms achieve at least α times the
// super-optimal utility (hence at least α·OPT) on random instances with
// strictly-increasing utilities and n >= m (the regime of Lemma V.3).
func TestApproximationRatioVsSuperOptimal(t *testing.T) {
	base := rng.New(31)
	for trial := 0; trial < 60; trial++ {
		r := base.Split(uint64(trial))
		m := 1 + r.Intn(5)
		n := m + r.Intn(30)
		c := 100.0
		threads := make([]utility.Func, n)
		for i := range threads {
			// Strictly increasing concave families only.
			switch r.Intn(3) {
			case 0:
				threads[i] = utility.Log{Scale: r.Uniform(0.5, 5), Shift: r.Uniform(1, 50), C: c}
			case 1:
				threads[i] = utility.Power{Scale: r.Uniform(0.5, 2), Beta: r.Uniform(0.3, 0.95), C: c}
			default:
				threads[i] = utility.Linear{Slope: r.Uniform(0.1, 3), C: c}
			}
		}
		in := &Instance{M: m, C: c, Threads: threads}
		so := SuperOptimal(in)
		for _, algo := range []struct {
			name string
			run  func(*Instance) Assignment
		}{{"Assign1", Assign1}, {"Assign2", Assign2}} {
			a := algo.run(in)
			assertFeasible(t, in, a, algo.name)
			u := a.Utility(in)
			if u < Alpha*so.Total*(1-1e-9)-1e-9 {
				t.Errorf("trial %d (n=%d m=%d): %s utility %v < α·F̂ = %v",
					trial, n, m, algo.name, u, Alpha*so.Total)
			}
		}
	}
}

// Against the exact optimum on small instances (mixed families, including
// saturating ones where Lemma V.3 may not bind).
func TestApproximationRatioVsExact(t *testing.T) {
	base := rng.New(32)
	for trial := 0; trial < 25; trial++ {
		r := base.Split(uint64(trial))
		m := 1 + r.Intn(3)
		n := 1 + r.Intn(7)
		in := randomInstance(r, n, m, 50)
		opt, err := Exhaustive(in)
		if err != nil {
			t.Fatal(err)
		}
		optU := opt.Utility(in)
		assertFeasible(t, in, opt, "Exhaustive")
		for _, algo := range []struct {
			name string
			run  func(*Instance) Assignment
		}{{"Assign1", Assign1}, {"Assign2", Assign2}} {
			a := algo.run(in)
			u := a.Utility(in)
			if u < Alpha*optU*(1-1e-6)-1e-9 {
				t.Errorf("trial %d (n=%d m=%d): %s utility %v < α·OPT = %v",
					trial, n, m, algo.name, u, Alpha*optU)
			}
			if u > optU*(1+1e-6)+1e-9 {
				t.Errorf("trial %d: %s utility %v exceeds optimum %v", trial, algo.name, u, optU)
			}
		}
	}
}

func TestBranchAndBoundMatchesExhaustive(t *testing.T) {
	base := rng.New(33)
	for trial := 0; trial < 15; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 1+r.Intn(6), 1+r.Intn(3), 50)
		ex, err := Exhaustive(in)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := BranchAndBound(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		exU, bbU := ex.Utility(in), bb.Utility(in)
		if math.Abs(exU-bbU) > 1e-6*(1+exU) {
			t.Errorf("trial %d: B&B %v != exhaustive %v", trial, bbU, exU)
		}
		assertFeasible(t, in, bb, "BranchAndBound")
	}
}

func TestExhaustiveRefusesHugeInstance(t *testing.T) {
	r := rng.New(34)
	in := randomInstance(r, 40, 8, 50)
	if _, err := Exhaustive(in); err == nil {
		t.Error("exhaustive accepted a 8^40 search space")
	}
}

func TestBranchAndBoundNodeLimit(t *testing.T) {
	r := rng.New(35)
	in := randomInstance(r, 12, 4, 50)
	if _, err := BranchAndBound(in, 3); err == nil {
		t.Error("expected node-limit error")
	}
}

func TestHeuristicsFeasibleAndDeterministic(t *testing.T) {
	in := smallInstance()
	r1, r2 := rng.New(77), rng.New(77)
	type result struct {
		name string
		a, b Assignment
	}
	results := []result{
		{"UU", AssignUU(in), AssignUU(in)},
		{"UR", AssignUR(in, r1), AssignUR(in, r2)},
		{"RU", AssignRU(in, r1), AssignRU(in, r2)},
		{"RR", AssignRR(in, r1), AssignRR(in, r2)},
	}
	for _, res := range results {
		assertFeasible(t, in, res.a, res.name)
		for i := range res.a.Server {
			if res.a.Server[i] != res.b.Server[i] || res.a.Alloc[i] != res.b.Alloc[i] {
				t.Errorf("%s not deterministic under same seed", res.name)
				break
			}
		}
	}
}

func TestUUOptimalAtBetaOne(t *testing.T) {
	// §VII-A: at β = 1 (n = m), UU places one thread per server with all
	// its resources — the optimal assignment.
	base := rng.New(41)
	for trial := 0; trial < 10; trial++ {
		r := base.Split(uint64(trial))
		m := 2 + r.Intn(6)
		in := randomInstance(r, m, m, 100)
		uu := AssignUU(in)
		so := SuperOptimal(in)
		if u := uu.Utility(in); u < so.Total*(1-1e-9)-1e-9 {
			t.Errorf("trial %d: UU at β=1 got %v < F̂ = %v", trial, u, so.Total)
		}
	}
}

func TestUURoundRobinShape(t *testing.T) {
	in := &Instance{
		M: 2,
		C: 10,
		Threads: []utility.Func{
			utility.Linear{Slope: 1, C: 10},
			utility.Linear{Slope: 1, C: 10},
			utility.Linear{Slope: 1, C: 10},
		},
	}
	a := AssignUU(in)
	if a.Server[0] != 0 || a.Server[1] != 1 || a.Server[2] != 0 {
		t.Errorf("round-robin servers = %v", a.Server)
	}
	// Server 0 hosts threads 0 and 2, each getting C/2 = 5.
	if a.Alloc[0] != 5 || a.Alloc[2] != 5 {
		t.Errorf("equal split on server 0 = [%v %v], want [5 5]", a.Alloc[0], a.Alloc[2])
	}
	if a.Alloc[1] != 10 {
		t.Errorf("alone thread alloc = %v, want 10", a.Alloc[1])
	}
}

func TestAssignBestAllocDominatesEqualSplit(t *testing.T) {
	base := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 12, 3, 100)
		servers := roundRobin(in)
		uu := AssignUU(in)
		ba := AssignBestAlloc(in, servers)
		assertFeasible(t, in, ba, "AssignBestAlloc")
		if ba.Utility(in) < uu.Utility(in)*(1-1e-9)-1e-9 {
			t.Errorf("trial %d: optimal per-server alloc %v < equal split %v",
				trial, ba.Utility(in), uu.Utility(in))
		}
	}
}

func TestAssignFixedRequestIntroExample(t *testing.T) {
	// §I: n threads with f(x) = x^β on one server with capacity C; every
	// thread requests z. Fixed-request serves only C/z of them; the
	// optimal (equal) allocation is ~n^(1-β) times better for large n.
	const (
		c    = 1000.0
		beta = 0.5
		z    = 100.0
		n    = 100
	)
	threads := make([]utility.Func, n)
	requests := make([]float64, n)
	for i := range threads {
		threads[i] = utility.Power{Scale: 1, Beta: beta, C: c}
		requests[i] = z
	}
	in := &Instance{M: 1, C: c, Threads: threads}
	fr := AssignFixedRequest(in, requests)
	assertFeasible(t, in, fr, "FixedRequest")
	served := 0
	for _, a := range fr.Alloc {
		if a > 0 {
			if a != z {
				t.Errorf("served thread got %v, want exactly z=%v", a, z)
			}
			served++
		}
	}
	if served != int(c/z) {
		t.Errorf("served %d threads, want C/z = %d", served, int(c/z))
	}
	frU := fr.Utility(in) // C/z · z^β = C·z^(β−1)
	wantFR := c * math.Pow(z, beta-1)
	if math.Abs(frU-wantFR) > 1e-6*wantFR {
		t.Errorf("fixed-request utility %v, want %v", frU, wantFR)
	}
	optU := SuperOptimal(in).Total // C^β·n^(1−β)
	wantOpt := math.Pow(c, beta) * math.Pow(n, 1-beta)
	if math.Abs(optU-wantOpt) > 1e-6*wantOpt {
		t.Errorf("optimal utility %v, want %v", optU, wantOpt)
	}
	if ratio := optU / frU; ratio < 3 {
		t.Errorf("optimal/fixed ratio %v, expected the large gap the intro describes", ratio)
	}
}

func TestAssignFixedRequestParksOversized(t *testing.T) {
	in := &Instance{
		M: 2,
		C: 10,
		Threads: []utility.Func{
			utility.Linear{Slope: 1, C: 10},
			utility.Linear{Slope: 1, C: 10},
			utility.Linear{Slope: 1, C: 10},
		},
	}
	a := AssignFixedRequest(in, []float64{8, 8, 8})
	assertFeasible(t, in, a, "FixedRequest")
	if a.Alloc[0] != 8 || a.Alloc[1] != 8 {
		t.Errorf("first two should be served: %v", a.Alloc)
	}
	if a.Alloc[2] != 0 {
		t.Errorf("third should be parked with 0, got %v", a.Alloc[2])
	}
}

func TestPartitionReductionSolvable(t *testing.T) {
	// {3,1,1,2,2,1} sums to 10; {3,2} vs {1,1,2,1} both sum 5 — solvable.
	ok, err := HasPartition([]float64{3, 1, 1, 2, 2, 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("solvable PARTITION instance reported unsolvable")
	}
}

func TestPartitionReductionUnsolvable(t *testing.T) {
	// Sum 7 is odd — no partition exists.
	ok, err := HasPartition([]float64{1, 2, 4}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unsolvable PARTITION instance reported solvable")
	}
	// {5, 1, 1} sums to 7 — also unsolvable even with even-count splits.
	ok, err = HasPartition([]float64{5, 1, 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("{5,1,1} reported solvable")
	}
}

func TestPartitionReductionRejectsBadInput(t *testing.T) {
	if _, err := ReduceFromPartition(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReduceFromPartition([]float64{1, -2}); err == nil {
		t.Error("negative number accepted")
	}
}

// Algorithm 2 must beat (or tie) every heuristic in expectation; we test a
// deterministic stronger statement on a skewed instance where careful
// placement matters: a few huge threads and many small ones.
func TestAssign2BeatsHeuristicsOnSkewedInstance(t *testing.T) {
	const c = 1000.0
	threads := make([]utility.Func, 40)
	for i := range threads {
		if i < 4 {
			threads[i] = utility.Linear{Slope: 100, C: c} // huge utility
		} else {
			threads[i] = utility.Log{Scale: 0.1, Shift: 10, C: c}
		}
	}
	in := &Instance{M: 8, C: c, Threads: threads}
	a2 := Assign2(in).Utility(in)
	r := rng.New(55)
	for _, h := range []struct {
		name string
		u    float64
	}{
		{"UU", AssignUU(in).Utility(in)},
		{"UR", AssignUR(in, r).Utility(in)},
		{"RU", AssignRU(in, r).Utility(in)},
		{"RR", AssignRR(in, r).Utility(in)},
	} {
		if a2 < h.u {
			t.Errorf("Assign2 (%v) lost to %s (%v)", a2, h.name, h.u)
		}
	}
	// The gap vs heuristics should be material (>1.5x) here: heuristics
	// split the four slope-100 threads' servers with junk threads.
	if uu := AssignUU(in).Utility(in); a2 < 1.2*uu {
		t.Logf("note: Assign2/UU ratio only %v", a2/uu)
	}
}

func BenchmarkAssign2N100M8(b *testing.B) {
	r := rng.New(1)
	in := randomInstance(r, 100, 8, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Assign2(in)
	}
}

func BenchmarkAssign1N100M8(b *testing.B) {
	r := rng.New(1)
	in := randomInstance(r, 100, 8, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Assign1(in)
	}
}

func BenchmarkSuperOptimalN100(b *testing.B) {
	r := rng.New(1)
	in := randomInstance(r, 100, 8, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SuperOptimal(in)
	}
}

// Empirical worst-case calibration: search adversarial-ish families
// (capped-linear mixtures — the structure of both the NP-hardness
// reduction and the tightness example) for the lowest Algorithm 2 /
// optimal ratio. The paper proves ≥ α ≈ 0.828 and exhibits 5/6 ≈ 0.833;
// the observed minimum must sit between them.
func TestEmpiricalWorstCaseRatio(t *testing.T) {
	base := rng.New(202)
	worst := 1.0
	var worstSeed int
	for trial := 0; trial < 60; trial++ {
		r := base.Split(uint64(trial))
		m := 2 + r.Intn(2)
		n := m + 1 + r.Intn(4)
		const c = 1.0
		threads := make([]utility.Func, n)
		for i := range threads {
			// Capped-linear with knees near C/2 mimic the tightness
			// construction; a few pure-linear threads play thread 3's role.
			if r.Float64() < 0.3 {
				threads[i] = utility.Linear{Slope: r.Uniform(0.5, 1.5), C: c}
			} else {
				threads[i] = utility.CappedLinear{
					Slope: r.Uniform(1, 3),
					Knee:  r.Uniform(0.3, 0.7),
					C:     c,
				}
			}
		}
		in := &Instance{M: m, C: c, Threads: threads}
		opt, err := BranchAndBound(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		optU := opt.Utility(in)
		if optU <= 0 {
			continue
		}
		ratio := Assign2(in).Utility(in) / optU
		if ratio < worst {
			worst, worstSeed = ratio, trial
		}
	}
	t.Logf("worst observed A2/OPT ratio: %.4f (trial %d); proven bound α = %.4f, tightness example = %.4f",
		worst, worstSeed, Alpha, 5.0/6.0)
	if worst < Alpha-1e-9 {
		t.Errorf("observed ratio %v violates the proven bound α = %v", worst, Alpha)
	}
	if worst > 0.999 {
		t.Log("note: no adversarial instance found in this search (all near-optimal)")
	}
}

// Ablation (ext-tail): the paper's slope re-sort of the tail (Algorithm 2
// line 2) is what Lemma V.10 rests on. Quantify its contribution against
// skipping it and against a size-based ordering, on the heavy-tailed
// power-law workload where ordering matters most.
func TestAblationTailOrdering(t *testing.T) {
	base := rng.New(205)
	var bySlope, byUHat, byCHat float64
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		r := base.Split(uint64(trial))
		n, m := 48, 4
		c := 100.0
		threads := make([]utility.Func, n)
		for i := range threads {
			// Power-law-ish spread of capped-linear utilities: a few huge
			// values, many small, varied knees — tail order decides who
			// gets the fragmented leftovers.
			v := r.PowerLaw(2, 1)
			threads[i] = utility.CappedLinear{Slope: v / 50, Knee: r.Uniform(10, c), C: c}
		}
		in := &Instance{M: m, C: c, Threads: threads}
		bySlope += Assign2TailOrder(in, TailBySlope).Utility(in)
		byUHat += Assign2TailOrder(in, TailByUHat).Utility(in)
		byCHat += Assign2TailOrder(in, TailByCHatDesc).Utility(in)
	}
	t.Logf("ablation mean utility: slope-sort %.2f, no re-sort %.2f, size-sort %.2f",
		bySlope/trials, byUHat/trials, byCHat/trials)
	// Finding (recorded in EXPERIMENTS.md): on average workloads the three
	// orderings are within a fraction of a percent — the slope re-sort is
	// a worst-case safeguard (it is what Lemma V.10 needs), not an
	// average-case optimization. Assert they stay in a tight band.
	if bySlope < byUHat*0.98 || bySlope < byCHat*0.98 {
		t.Errorf("slope-sorted tail (%v) far below alternatives (%v, %v)", bySlope, byUHat, byCHat)
	}

	// And the worst case the re-sort exists for: residual capacity too
	// small for a big flat tail thread — the steep small thread must go
	// first. Drive the variant directly with hand-built linearizations so
	// the super-optimal step cannot smooth the instance away.
	in2 := &Instance{
		M: 1,
		C: 1,
		Threads: []utility.Func{
			utility.CappedLinear{Slope: 4, Knee: 0.5, C: 1}, // head
			utility.CappedLinear{Slope: 1, Knee: 1.0, C: 1}, // flat tail thread
			utility.CappedLinear{Slope: 3, Knee: 0.3, C: 1}, // steep tail thread
		},
	}
	gs := []Linearized{
		{UHat: 2, CHat: 0.5, C: 1},
		{UHat: 1, CHat: 1.0, C: 1},   // slope 1, but larger UHat
		{UHat: 0.9, CHat: 0.3, C: 1}, // slope 3
	}
	withSort := assign2WithTailOrder(in2, gs, TailBySlope).Utility(in2)
	withoutSort := assign2WithTailOrder(in2, gs, TailByUHat).Utility(in2)
	if withSort <= withoutSort {
		t.Errorf("crafted instance: slope sort (%v) should beat unsorted tail (%v)",
			withSort, withoutSort)
	}
	// All variants stay feasible and bounded (smoke assertion).
	r := base.Split(999)
	in := randomInstance(r, 24, 3, 100)
	for _, to := range []TailOrder{TailBySlope, TailByUHat, TailByCHatDesc} {
		a := Assign2TailOrder(in, to)
		assertFeasible(t, in, a, "Assign2TailOrder")
	}
}

// Regression guard for numeric-domain hangs: a large capacity (1e9) once
// spun the generic derivative bisection forever (absolute tolerance below
// the float64 ulp at that magnitude). End-to-end must stay fast.
func TestLargeDomainEndToEnd(t *testing.T) {
	r := rng.New(206)
	const c = 1e9
	threads := make([]utility.Func, 200)
	for i := range threads {
		switch r.Intn(3) {
		case 0:
			threads[i] = utility.Log{Scale: r.Uniform(0.5, 5), Shift: r.Uniform(1, c/4), C: c}
		case 1:
			threads[i] = utility.Power{Scale: r.Uniform(0.5, 2), Beta: r.Uniform(0.3, 0.9), C: c}
		default:
			// PCHIP-backed curve over the huge domain: the generic
			// bisection path that used to hang.
			f, err := utility.NewSampled(
				[]float64{0, c / 2, c},
				[]float64{0, r.Uniform(0.5, 2), r.Uniform(2, 4)})
			if err != nil {
				t.Fatal(err)
			}
			threads[i] = f
		}
	}
	in := &Instance{M: 8, C: c, Threads: threads}
	start := time.Now()
	a := Assign2(in)
	elapsed := time.Since(start)
	assertFeasible(t, in, a, "Assign2")
	if elapsed > 30*time.Second {
		t.Errorf("large-domain solve took %v", elapsed)
	}
}
