#!/usr/bin/env bash
# batch_stream_smoke.sh — end-to-end check of the streaming /solve/batch
# pipeline.
#
# Builds aaserve and aagen, assembles a multi-megabyte batch of
# generated instances, and checks the streaming contract end to end:
#
#   1. wire compatibility — the streaming response is byte-identical to
#      the buffered (-stream-batch=false) response for the same batch;
#   2. determinism — the same streaming request twice returns
#      byte-identical bodies;
#   3. bounded memory — the streaming server's peak RSS (VmHWM) stays
#      BELOW the request body size, which buffering the batch could not
#      do (skipped where /proc is unavailable);
#   4. the 413 guard — a server with a small -max-batch-bytes rejects
#      the batch with HTTP 413 and the typed batch_too_large JSON error.
#
# Environment knobs:
#   BATCH_COUNT  instances in the batch (default 400)
#   BATCH_N      threads per instance (default 500)
#
# The defaults build a ~35 MB body — large enough that holding the
# batch in memory would show in VmHWM, small enough for a CI lane.
set -euo pipefail
cd "$(dirname "$0")/.."

BATCH_COUNT="${BATCH_COUNT:-400}"
BATCH_N="${BATCH_N:-500}"

tmpdir="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    for p in "${pids[@]:-}"; do
        [ -n "$p" ] && wait "$p" 2>/dev/null || true
    done
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

go build -o "$tmpdir/aaserve" ./cmd/aaserve
go build -o "$tmpdir/aagen" ./cmd/aagen

# Four base instances cycled through the batch: distinct solves, cheap
# generation.
for seed in 1 2 3 4; do
    "$tmpdir/aagen" -dist powerlaw -m 8 -c 1000 -n "$BATCH_N" -seed "$seed" \
        >"$tmpdir/inst$seed.json"
done
{
    printf '['
    i=0
    while [ "$i" -lt "$BATCH_COUNT" ]; do
        [ "$i" -gt 0 ] && printf ','
        cat "$tmpdir/inst$(((i % 4) + 1)).json"
        i=$((i + 1))
    done
    printf ']'
} >"$tmpdir/batch.json"
body_bytes="$(wc -c <"$tmpdir/batch.json")"
echo "batch_stream_smoke: batch of $BATCH_COUNT instances, $body_bytes bytes"

# start_server <logfile> [flags...] — starts aaserve on an ephemeral
# port and sets server_addr/server_pid. Runs in the parent shell (no
# command substitution: a subshell's stdout pipe would be held open by
# the backgrounded server, and the pid must land in pids for cleanup).
start_server() {
    local log="$1"
    shift
    "$tmpdir/aaserve" -addr 127.0.0.1:0 -workers 2 "$@" >/dev/null 2>"$log" &
    server_pid=$!
    pids+=("$server_pid")
    server_addr=""
    local i=0
    while [ $i -lt 100 ]; do
        server_addr="$(sed -n 's|.*listening on http://\([^ ]*\)$|\1|p' "$log" | head -n1)"
        [ -n "$server_addr" ] && break
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "batch_stream_smoke: aaserve exited before listening" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$server_addr" ]; then
        echo "batch_stream_smoke: never saw the listening line" >&2
        cat "$log" >&2
        exit 1
    fi
}

start_server "$tmpdir/stream.log"
stream_addr="$server_addr" stream_pid="$server_pid"
start_server "$tmpdir/buffered.log" -stream-batch=false
buffered_addr="$server_addr"

post_batch() {
    curl -fsS -X POST -H 'Content-Type: application/json' \
        --data-binary @"$tmpdir/batch.json" "http://$1/solve/batch" -o "$2"
}

post_batch "$stream_addr" "$tmpdir/stream_a.json"
post_batch "$stream_addr" "$tmpdir/stream_b.json"
post_batch "$buffered_addr" "$tmpdir/buffered.json"

if ! cmp -s "$tmpdir/stream_a.json" "$tmpdir/stream_b.json"; then
    echo "batch_stream_smoke: FAIL: repeated streaming responses differ" >&2
    exit 1
fi
if ! cmp -s "$tmpdir/stream_a.json" "$tmpdir/buffered.json"; then
    echo "batch_stream_smoke: FAIL: streaming response differs from buffered" >&2
    diff <(head -c 2000 "$tmpdir/stream_a.json") <(head -c 2000 "$tmpdir/buffered.json") | head -20 >&2 || true
    exit 1
fi

# Bounded memory: after two full-batch streams the server's lifetime
# peak RSS must still be below the size of ONE request body — the
# streaming pipeline never holds the batch.
if [ -r "/proc/$stream_pid/status" ]; then
    hwm_kb="$(awk '/^VmHWM:/ {print $2}' "/proc/$stream_pid/status")"
    hwm_bytes=$((hwm_kb * 1024))
    if [ "$hwm_bytes" -ge "$body_bytes" ]; then
        echo "batch_stream_smoke: FAIL: streaming server peak RSS ${hwm_bytes}B >= body ${body_bytes}B" >&2
        exit 1
    fi
    echo "batch_stream_smoke: peak RSS ${hwm_bytes}B < body ${body_bytes}B"
else
    echo "batch_stream_smoke: /proc unavailable; skipping the RSS bound"
fi

# The 413 guard: a tiny -max-batch-bytes must reject the batch with the
# typed JSON error before solving anything.
start_server "$tmpdir/limited.log" -max-batch-bytes 1000
limited_addr="$server_addr"
code="$(curl -sS -o "$tmpdir/too_large.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' \
    --data-binary @"$tmpdir/batch.json" "http://$limited_addr/solve/batch")"
if [ "$code" != 413 ]; then
    echo "batch_stream_smoke: FAIL: oversized batch got HTTP $code, want 413" >&2
    cat "$tmpdir/too_large.json" >&2
    exit 1
fi
if ! grep -q '"code": "batch_too_large"' "$tmpdir/too_large.json"; then
    echo "batch_stream_smoke: FAIL: 413 body missing batch_too_large code" >&2
    cat "$tmpdir/too_large.json" >&2
    exit 1
fi

echo "batch_stream_smoke: OK ($BATCH_COUNT instances, stream==buffered, deterministic, RSS-bounded, 413 typed)"
