// Command aabench regenerates the paper's evaluation (Figures 1–3 of
// IPDPS'16 "Utility Maximizing Thread Assignment and Resource
// Allocation"): for each figure it sweeps the paper's parameter grid,
// runs Algorithm 2 against the super-optimal bound and the UU/UR/RU/RR
// heuristics over many random trials, and prints the mean utility ratios
// as a table (optionally also an ASCII chart and CSV files).
//
// Usage:
//
//	aabench [-fig all|fig1a|fig1b|fig2a|fig2b|fig3a|fig3b|fig3c|ext-ls]
//	        [-ext] [-plot] [-trials 1000] [-seed 1] [-workers 0]
//	        [-timeout 0] [-csv dir] [-v] [-check]
//	        [-metrics-addr host:port] [-trace-out file.jsonl]
//
// Trials fan out across a solver pool with -workers goroutines
// (0 = GOMAXPROCS); the tables are identical for every worker count.
// -timeout bounds the whole run: on expiry the remaining trials are
// cancelled and the command fails with the deadline error. -ext
// additionally runs the extension experiments (e.g. ext-ls: local
// search and greedy-marginal against the super-optimal bound) when
// -fig all is selected.
//
// Observability: -metrics-addr serves live Prometheus text at
// /metrics, expvar JSON at /vars and /debug/vars, and net/http/pprof
// at /debug/pprof while the run executes (use :0 for an ephemeral
// port; the bound address is printed to stderr). -trace-out appends
// one JSONL span/event per solver stage and sweep point for offline
// analysis. -v enables telemetry and prints a one-line summary (total
// solves, p50/p99 solve latency, bisection iterations per solve) to
// stderr at exit.
//
// -check (or AA_CHECK=1) verifies every trial through internal/check —
// feasibility for each solver's assignment, the α-ratio guarantee for
// Assign1/Assign2 and the F ≤ F̂ bound for the heuristics — failing the
// run on the first violation and printing a check summary at exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"aa/internal/cliutil"
	"aa/internal/experiment"
	"aa/internal/hetero"
	"aa/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "aabench: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aabench", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "figure id to run, or 'all'")
		trials   = fs.Int("trials", experiment.DefaultTrials, "random trials per sweep point")
		seed     = fs.Uint64("seed", 1, "base random seed")
		workers  = fs.Int("workers", 0, "solver pool workers (0 = GOMAXPROCS)")
		parallel = fs.Int("parallel", 0, "deprecated alias for -workers")
		timeout  = fs.Duration("timeout", 0, "overall deadline for the run (0 = none)")
		csvDir   = fs.String("csv", "", "directory to write per-figure CSV files (optional)")
		ext      = fs.Bool("ext", false, "with -fig all, also run the extension experiments")
		plot     = fs.Bool("plot", false, "render each figure as an ASCII chart as well")
		rom      = fs.Bool("rom", false, "also print the ratio-of-means estimator table")
		verbose  = fs.Bool("v", false, "print a one-line telemetry summary to stderr at exit")
	)
	var common cliutil.Common
	common.AddFlags(fs)
	if err := cliutil.Parse(fs, args, stderr); err != nil {
		if errors.Is(err, cliutil.ErrHelp) {
			return nil
		}
		return err
	}
	if *workers == 0 {
		*workers = *parallel
	}
	shutdown, err := common.Start("aabench", stderr)
	if err != nil {
		return err
	}
	defer shutdown()
	if *verbose {
		telemetry.Enable()
		defer printTelemetrySummary(stderr)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// ext-hetero and ext-runtime have their own harnesses (per-server
	// capacities and wall-clock timing do not fit the homogeneous
	// ratio-sweep pipeline).
	switch *fig {
	case "ext-hetero":
		tbl, err := hetero.SkewSeries(*trials, *seed)
		if err != nil {
			return err
		}
		return tbl.WriteASCII(stdout)
	case "ext-runtime":
		reps := *trials
		if reps > 50 {
			reps = 50 // timing needs repetitions, not the paper's 1000 trials
		}
		tbl, err := experiment.RuntimeTable(*seed, reps)
		if err != nil {
			return err
		}
		return tbl.WriteASCII(stdout)
	}

	var specs []experiment.Spec
	if *fig == "all" {
		specs = experiment.AllFigures(*trials)
		if *ext {
			specs = append(specs, experiment.AllExtensions(*trials)...)
		}
	} else {
		spec, ok := experiment.ByID(*fig, *trials)
		if !ok {
			return fmt.Errorf("unknown figure %q", *fig)
		}
		specs = []experiment.Spec{spec}
	}

	for _, spec := range specs {
		start := time.Now()
		res, err := experiment.RunContext(ctx, spec, *seed, *workers)
		if err != nil {
			return err
		}
		if err := experiment.Render(res).WriteASCII(stdout); err != nil {
			return err
		}
		if *rom {
			if err := experiment.RenderRoM(res).WriteASCII(stdout); err != nil {
				return err
			}
		}
		if *plot {
			if err := experiment.RenderChart(res).WriteASCII(stdout); err != nil {
				return err
			}
		}
		fmt.Fprintf(stdout, "(%s in %v)\n\n", spec.ID, time.Since(start).Round(time.Millisecond))

		if *csvDir != "" {
			if err := writeCSV(*csvDir, spec.ID, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// printTelemetrySummary writes the -v one-liner: total solves, p50/p99
// solve latency, and mean bisection iterations per super-optimal solve,
// all read from the process-wide telemetry registry.
func printTelemetrySummary(stderr io.Writer) {
	reg := telemetry.Default
	solves := reg.Counter("aa_pool_completed_total").Value()
	lat := reg.Histogram("aa_pool_solve_latency_seconds", telemetry.LatencyBuckets)
	iters := reg.Counter("aa_core_bisection_iterations_total").Value()
	calls := reg.Counter("aa_core_superopt_total").Value()
	perSolve := 0.0
	if calls > 0 {
		perSolve = float64(iters) / float64(calls)
	}
	fmt.Fprintf(stderr,
		"aabench: telemetry: solves=%d p50=%s p99=%s bisection_iters/solve=%.1f\n",
		solves,
		time.Duration(lat.Quantile(0.50)*float64(time.Second)).Round(time.Microsecond),
		time.Duration(lat.Quantile(0.99)*float64(time.Second)).Round(time.Microsecond),
		perSolve)
}

func writeCSV(dir, id string, res *experiment.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiment.Render(res).WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	// Close errors matter here: the CSV is the artifact, and a failed
	// flush would otherwise be dropped silently.
	return f.Close()
}
