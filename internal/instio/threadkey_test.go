package instio

import (
	"bytes"
	"testing"

	"aa/internal/utility"
)

func threadBin(t *testing.T, f utility.Func) []byte {
	t.Helper()
	b, err := AppendThreadBinary(nil, f)
	if err != nil {
		t.Fatalf("AppendThreadBinary(%T): %v", f, err)
	}
	return b
}

func TestThreadBinaryStableAndDiscriminating(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 2, C: 200},
		utility.CappedLinear{Slope: 1.5, Knee: 80, C: 200},
		utility.Power{Scale: 3, Beta: 0.7, C: 200},
		utility.Log{Scale: 4, Shift: 25, C: 200},
		utility.SatExp{Scale: 5, K: 60, C: 200},
		utility.Saturating{Scale: 6, K: 90, C: 200},
	}
	seen := map[string]int{}
	for i, f := range fs {
		k1 := threadBin(t, f)
		k2 := threadBin(t, f)
		if !bytes.Equal(k1, k2) {
			t.Fatalf("AppendThreadBinary(%T) not deterministic: %x vs %x", f, k1, k2)
		}
		if j, dup := seen[string(k1)]; dup {
			t.Fatalf("utilities %d and %d collide on encoding %x", j, i, k1)
		}
		seen[string(k1)] = i
	}
	// Same family, different parameter → different encoding.
	a := threadBin(t, utility.Linear{Slope: 2, C: 200})
	b := threadBin(t, utility.Linear{Slope: 2.0000001, C: 200})
	if bytes.Equal(a, b) {
		t.Fatalf("parameter change not reflected in encoding: %x", a)
	}
	// Different cap only → different encoding. The JSON wire form drops
	// per-thread caps (Decode re-derives them from the instance C), so the
	// binary form must bind the cap explicitly or cap-only changes would
	// collide.
	c := threadBin(t, utility.Linear{Slope: 2, C: 100})
	if bytes.Equal(a, c) {
		t.Fatalf("cap change not reflected in encoding: %x", a)
	}
}

func TestThreadBinaryAppendsToDst(t *testing.T) {
	prefix := []byte("prefix")
	out, err := AppendThreadBinary(prefix, utility.Linear{Slope: 2, C: 200})
	if err != nil {
		t.Fatalf("AppendThreadBinary: %v", err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatalf("dst prefix not preserved: %x", out)
	}
	if !bytes.Equal(out[len(prefix):], threadBin(t, utility.Linear{Slope: 2, C: 200})) {
		t.Fatalf("appended bytes differ from fresh encoding")
	}
}

func TestThreadBinaryKnotFamilies(t *testing.T) {
	pw, err := utility.NewPiecewiseLinear([]float64{0, 50, 200}, []float64{0, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := utility.NewSampled([]float64{0, 100, 200}, []float64{0, 25, 32})
	if err != nil {
		t.Fatal(err)
	}
	// The knot families must encode their exact defining knots, not a
	// resampled approximation — distinct curves with the same span must
	// not collide, and the same knots must round to the same bytes.
	kPW := threadBin(t, pw)
	kSA := threadBin(t, sa)
	if bytes.Equal(kPW, kSA) {
		t.Fatalf("piecewise and sampled encodings collide: %x", kPW)
	}
	pw2, err := utility.NewPiecewiseLinear([]float64{0, 50, 200}, []float64{0, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(kPW, threadBin(t, pw2)) {
		t.Fatalf("equal piecewise curves encode differently")
	}
	pw3, err := utility.NewPiecewiseLinear([]float64{0, 50, 200}, []float64{0, 30.0000001, 40})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(kPW, threadBin(t, pw3)) {
		t.Fatalf("one-knot change not reflected in encoding")
	}
}

func TestThreadBinaryUnknownTypeErrors(t *testing.T) {
	if _, err := AppendThreadBinary(nil, weird{}); err == nil {
		t.Fatal("expected error for utility type outside the wire vocabulary")
	}
}
