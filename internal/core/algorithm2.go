package core

import "sort"

// Assign2 is the paper's Algorithm 2: the O(n (log mC)²) algorithm with
// the same α = 2(√2−1) approximation ratio as Algorithm 1 (Theorem VI.1).
//
// It sorts threads by linearized utility g_i(ĉ_i) in nonincreasing order,
// re-sorts the tail (positions m+1..n) by ramp slope g_i(ĉ_i)/ĉ_i in
// nonincreasing order, then serves threads in sequence: each takes
// min(ĉ_i, C_j) from the server j with the most remaining resource,
// maintained in a max-heap.
func Assign2(in *Instance) Assignment {
	so := SuperOptimal(in)
	gs := Linearize(in, so)
	return Assign2Linearized(in, gs)
}

// Assign2Linearized runs Algorithm 2 given precomputed linearized
// utilities, letting callers share one super-optimal computation across
// several algorithms.
func Assign2Linearized(in *Instance, gs []Linearized) Assignment {
	return assign2WithTailOrder(in, gs, TailBySlope)
}

// TailOrder selects how Algorithm 2's line 2 orders threads m+1..n; only
// TailBySlope carries the paper's guarantee, the others exist for the
// ablation study (ext-tail in DESIGN.md).
type TailOrder int

// Tail orderings for the ablation.
const (
	// TailBySlope is the paper's rule: nonincreasing g(ĉ)/ĉ.
	TailBySlope TailOrder = iota
	// TailByUHat skips line 2 entirely (tail stays sorted by g(ĉ)).
	TailByUHat
	// TailByCHatDesc orders by super-optimal allocation, biggest first.
	TailByCHatDesc
)

// Assign2TailOrder runs Algorithm 2 with a pluggable line-2 ordering —
// the ablation knob for quantifying how much the paper's slope re-sort
// contributes.
func Assign2TailOrder(in *Instance, tailOrder TailOrder) Assignment {
	so := SuperOptimal(in)
	gs := Linearize(in, so)
	return assign2WithTailOrder(in, gs, tailOrder)
}

func assign2WithTailOrder(in *Instance, gs []Linearized, tailOrder TailOrder) Assignment {
	start := stageStart()
	n, m := in.N(), in.M
	out := NewAssignment(n)

	// Work counters, accumulated locally (a register increment next to a
	// float compare) and flushed to the registry once at the end.
	var sortCmps int

	// Line 1: order all threads by g_i(ĉ_i), nonincreasing.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sortCmps++
		return gs[order[a]].UHat > gs[order[b]].UHat
	})
	// Line 2: re-sort the tail (threads m+1..n in that ordering).
	if n > m {
		tail := order[m:]
		switch tailOrder {
		case TailBySlope:
			sort.SliceStable(tail, func(a, b int) bool {
				sortCmps++
				return gs[tail[a]].Slope() > gs[tail[b]].Slope()
			})
		case TailByCHatDesc:
			sort.SliceStable(tail, func(a, b int) bool {
				sortCmps++
				return gs[tail[a]].CHat > gs[tail[b]].CHat
			})
		case TailByUHat:
			// Keep the line-1 ordering.
		}
	}

	// Lines 3–4: max-heap of residual server capacities.
	h := newServerHeap(m, in.C)

	// Lines 5–10: serve threads in order from the fullest server.
	for _, i := range order {
		srv := h.peek()
		amount := gs[i].CHat
		if amount > srv.residual {
			amount = srv.residual
		}
		out.Server[i] = srv.id
		out.Alloc[i] = amount
		h.updateTop(srv.residual - amount)
	}
	if !start.IsZero() {
		metricAssign2Calls.Inc()
		metricAssign2SortCmps.Add(uint64(sortCmps))
		// n updateTop calls plus every sift-down swap they performed.
		metricAssign2HeapOps.Add(uint64(n) + uint64(h.swaps))
		stageEnd(start, metricAssign2Seconds, "core.assign2", n)
	}
	return out
}

// serverHeap is a binary max-heap over server residual capacities.
type serverEntry struct {
	id       int
	residual float64
}

type serverHeap struct {
	entries []serverEntry
	swaps   int // sift-down swaps, for the heap-operations telemetry
}

// newServerHeap builds a heap of m servers, all with residual c. All keys
// equal means any order is a valid heap.
func newServerHeap(m int, c float64) *serverHeap {
	entries := make([]serverEntry, m)
	for j := range entries {
		entries[j] = serverEntry{id: j, residual: c}
	}
	return &serverHeap{entries: entries}
}

// peek returns the server with the most remaining resource.
func (h *serverHeap) peek() serverEntry { return h.entries[0] }

// updateTop replaces the top's residual and restores the heap property.
func (h *serverHeap) updateTop(newResidual float64) {
	h.entries[0].residual = newResidual
	n := len(h.entries)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.entries[l].residual > h.entries[largest].residual {
			largest = l
		}
		if r < n && h.entries[r].residual > h.entries[largest].residual {
			largest = r
		}
		if largest == i {
			return
		}
		h.entries[i], h.entries[largest] = h.entries[largest], h.entries[i]
		h.swaps++
		i = largest
	}
}
