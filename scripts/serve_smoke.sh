#!/usr/bin/env bash
# serve_smoke.sh — end-to-end check of the aaserve HTTP service.
#
# Builds aaserve and aagen, starts the server on an ephemeral port,
# generates a figure-corpus instance, POSTs it to /solve with checking
# on, and fails unless the response is a feasible assignment (utility
# within the super-optimal bound, every thread placed) and the live
# /metrics exposition shows the engine pipeline counters moving. Ends
# with a SIGTERM and requires a clean drain. Run from the repository
# root; CI runs it after the metrics smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir="$(mktemp -d)"
stderr_log="$tmpdir/stderr.log"
cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    [ -n "${pid:-}" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

go build -o "$tmpdir/aaserve" ./cmd/aaserve
go build -o "$tmpdir/aagen" ./cmd/aagen

"$tmpdir/aagen" -dist powerlaw -m 6 -c 1000 -n 40 -seed 5 >"$tmpdir/instance.json"

"$tmpdir/aaserve" -addr 127.0.0.1:0 -workers 2 2>"$stderr_log" &
pid=$!

# Wait for the listening line on stderr (up to ~10 s).
addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's|.*listening on http://\([^ ]*\)$|\1|p' "$stderr_log" | head -n1)"
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve_smoke: aaserve exited before listening" >&2
        cat "$stderr_log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "serve_smoke: never saw the listening line on stderr" >&2
    cat "$stderr_log" >&2
    exit 1
fi

# Solve with per-request checking: a non-200 here means the pipeline
# rejected its own solution.
if ! curl -fsS -X POST --data-binary @"$tmpdir/instance.json" \
    "http://$addr/solve?check=1" >"$tmpdir/assignment.json"; then
    echo "serve_smoke: solve request failed" >&2
    cat "$stderr_log" >&2
    exit 1
fi

# The response must place all 40 threads and respect the bound. With
# python3 available we check the numbers; otherwise just the shape.
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmpdir/assignment.json" <<'EOF' || { echo "serve_smoke: bad assignment" >&2; exit 1; }
import json, sys
a = json.load(open(sys.argv[1]))
assert len(a["server"]) == 40, f'placed {len(a["server"])}/40 threads'
assert len(a["alloc"]) == 40
assert a["utility"] > 0
assert a["utility"] <= a["superOptimalBound"] * (1 + 1e-9), "utility above bound"
EOF
else
    for field in '"server"' '"alloc"' '"utility"' '"superOptimalBound"'; do
        grep -q "$field" "$tmpdir/assignment.json" || {
            echo "serve_smoke: response missing $field" >&2
            exit 1
        }
    done
fi

# A batch solve through the queue.
printf '[%s,%s]' "$(cat "$tmpdir/instance.json")" "$(cat "$tmpdir/instance.json")" \
    >"$tmpdir/batch.json"
if ! curl -fsS -X POST --data-binary @"$tmpdir/batch.json" \
    "http://$addr/solve/batch" >"$tmpdir/batch_out.json"; then
    echo "serve_smoke: batch request failed" >&2
    exit 1
fi

# The live exposition must show the engine pipeline counters moving.
curl -fsS "http://$addr/metrics" >"$tmpdir/metrics.txt"
status=0
for want in \
    aa_engine_requests_total \
    aa_engine_solve_latency_seconds_bucket \
    aa_core_superopt_total \
    aa_pool_submitted_total; do
    if ! grep -q "^$want" "$tmpdir/metrics.txt" && ! grep -q "^${want}{" "$tmpdir/metrics.txt"; then
        echo "serve_smoke: MISSING $want" >&2
        status=1
    fi
done
if ! grep -E '^aa_engine_requests_total\{backend="assign2"\} [1-9]' "$tmpdir/metrics.txt" >/dev/null; then
    echo "serve_smoke: assign2 request counter did not move" >&2
    status=1
fi
if [ "$status" != 0 ]; then
    echo "--- scraped exposition ---" >&2
    cat "$tmpdir/metrics.txt" >&2
    exit 1
fi

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" != 0 ]; then
    echo "serve_smoke: aaserve exited $rc after SIGTERM" >&2
    cat "$stderr_log" >&2
    exit 1
fi

echo "serve_smoke: OK (solve + batch + $(grep -c '^aa_' "$tmpdir/metrics.txt") aa_* sample lines from http://$addr)"
