package core

import (
	"aa/internal/alloc"
	"aa/internal/telemetry"
	"aa/internal/utility"
)

// AssignGreedyMarginal is a natural stronger baseline not in the paper:
// threads are ordered by standalone utility f_i(min(ĉ_i, C)) descending,
// and each is placed on the server where it adds the most utility,
// where "adds" means the increase of that server's optimally re-allocated
// total. It is what a careful practitioner might build without the
// paper's linearization insight; the experiments use it to position
// Algorithm 2 against more than the four naive heuristics.
//
// Runtime O(n·m·A) where A is one concave allocation — substantially
// slower than Algorithm 2 and with no approximation guarantee.
func AssignGreedyMarginal(in *Instance) Assignment {
	n, m := in.N(), in.M
	fs := cappedThreads(in)
	so := SuperOptimal(in)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	standalone := make([]float64, n)
	for i, f := range fs {
		standalone[i] = f.Value(so.Alloc[i])
	}
	for a := 1; a < n; a++ { // insertion sort desc
		for b := a; b > 0 && standalone[order[b]] > standalone[order[b-1]]; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}

	groups := make([][]int, m)
	totals := make([]float64, m)
	for _, i := range order {
		bestJ, bestDelta, bestTotal := 0, -1.0, 0.0
		for j := 0; j < m; j++ {
			cand := append(append([]int(nil), groups[j]...), i)
			total := groupTotal(in, fs, cand)
			if delta := total - totals[j]; delta > bestDelta {
				bestJ, bestDelta, bestTotal = j, delta, total
			}
		}
		groups[bestJ] = append(groups[bestJ], i)
		totals[bestJ] = bestTotal
	}

	out := NewAssignment(n)
	for j, group := range groups {
		applyGroupAllocation(in, fs, group, j, &out)
	}
	return out
}

// groupTotal is the optimal utility of a thread group sharing one server.
func groupTotal(in *Instance, fs []utility.Func, group []int) float64 {
	if len(group) == 0 {
		return 0
	}
	gfs := make([]utility.Func, len(group))
	for k, i := range group {
		gfs[k] = fs[i]
	}
	return alloc.Concave(gfs, in.C).Total
}

// applyGroupAllocation writes a group's optimal allocation into out.
func applyGroupAllocation(in *Instance, fs []utility.Func, group []int, server int, out *Assignment) {
	if len(group) == 0 {
		return
	}
	gfs := make([]utility.Func, len(group))
	for k, i := range group {
		gfs[k] = fs[i]
	}
	res := alloc.Concave(gfs, in.C)
	for k, i := range group {
		out.Server[i] = server
		out.Alloc[i] = res.Alloc[k]
	}
}

// PolishAllocations keeps an assignment's thread→server map but
// re-solves every server's allocation optimally against the original
// concave utilities. Algorithm 2 hands out allocations shaped by the
// linearized surrogates; polishing reclaims whatever the surrogate left
// behind (including server residuals the linearized greedy never
// assigns). Utility never decreases, and the α guarantee is preserved
// because the input assignment stays feasible.
func PolishAllocations(in *Instance, a Assignment) Assignment {
	n, m := in.N(), in.M
	fs := cappedThreads(in)
	out := NewAssignment(n)
	copy(out.Server, a.Server)
	groups := make([][]int, m)
	for i, s := range a.Server {
		groups[s] = append(groups[s], i)
	}
	for j, group := range groups {
		applyGroupAllocation(in, fs, group, j, &out)
	}
	return out
}

// Improve post-optimizes an assignment by local search with two move
// types: single-thread relocation, and — once no relocation improves —
// pairwise swaps of threads between servers (re-allocating the affected
// servers optimally in both cases). Swaps matter on tight instances
// where every server is full, so no thread can relocate yet exchanging
// two threads still helps (the PARTITION-style instances of the
// NP-hardness proof). Utility never decreases; the result is feasible
// whenever the input is; maxMoves bounds the total move count (0 means
// n·m).
//
// Returns the improved assignment and the number of moves applied.
func Improve(in *Instance, a Assignment, maxMoves int) (Assignment, int) {
	start := stageStart()
	n, m := in.N(), in.M
	if maxMoves <= 0 {
		maxMoves = n * m
	}
	fs := cappedThreads(in)

	groups := make([][]int, m)
	for i, s := range a.Server {
		groups[s] = append(groups[s], i)
	}
	totals := make([]float64, m)
	for j := range groups {
		totals[j] = groupTotal(in, fs, groups[j])
	}

	moves := 0
	const eps = 1e-9
	for moves < maxMoves {
		improved := false
		for i := 0; i < n && moves < maxMoves; i++ {
			from := serverOf(groups, i)
			without := removeFrom(groups[from], i)
			fromTotal := groupTotal(in, fs, without)
			bestJ, bestGain := -1, eps
			var bestToTotal float64
			for j := 0; j < m; j++ {
				if j == from {
					continue
				}
				cand := append(append([]int(nil), groups[j]...), i)
				toTotal := groupTotal(in, fs, cand)
				gain := (fromTotal + toTotal) - (totals[from] + totals[j])
				if gain > bestGain {
					bestJ, bestGain, bestToTotal = j, gain, toTotal
				}
			}
			if bestJ >= 0 {
				groups[from] = without
				groups[bestJ] = append(groups[bestJ], i)
				totals[from] = fromTotal
				totals[bestJ] = bestToTotal
				moves++
				improved = true
			}
		}
		if !improved && moves < maxMoves {
			improved = swapPass(in, fs, groups, totals, &moves, maxMoves, eps)
		}
		if !improved {
			break
		}
	}

	out := NewAssignment(n)
	for j, group := range groups {
		applyGroupAllocation(in, fs, group, j, &out)
	}
	if !start.IsZero() {
		metricLocalSearchMoves.Add(uint64(moves))
		stageEnd(start, metricLocalSearchSeconds, "core.localsearch", telemetry.SpanContext{}, n)
	}
	return out, moves
}

// swapPass applies the first improving pairwise swap it finds, updating
// groups/totals in place. Returns whether a swap was applied.
func swapPass(in *Instance, fs []utility.Func, groups [][]int, totals []float64, moves *int, maxMoves int, eps float64) bool {
	m := len(groups)
	for ja := 0; ja < m; ja++ {
		for jb := ja + 1; jb < m; jb++ {
			for _, i := range groups[ja] {
				for _, k := range groups[jb] {
					aSwap := append(removeFrom(groups[ja], i), k)
					bSwap := append(removeFrom(groups[jb], k), i)
					aTotal := groupTotal(in, fs, aSwap)
					bTotal := groupTotal(in, fs, bSwap)
					gain := (aTotal + bTotal) - (totals[ja] + totals[jb])
					if gain > eps {
						groups[ja] = aSwap
						groups[jb] = bSwap
						totals[ja], totals[jb] = aTotal, bTotal
						*moves++
						return true
					}
					if *moves >= maxMoves {
						return false
					}
				}
			}
		}
	}
	return false
}

func serverOf(groups [][]int, thread int) int {
	for j, group := range groups {
		for _, i := range group {
			if i == thread {
				return j
			}
		}
	}
	return -1
}

func removeFrom(group []int, thread int) []int {
	out := make([]int, 0, len(group))
	for _, i := range group {
		if i != thread {
			out = append(out, i)
		}
	}
	return out
}
