package hosting

import (
	"context"
	"fmt"

	"aa/internal/core"
	"aa/internal/engine"
)

// The hosting backend translates a Deployment into an AA instance whose
// utility is the fleet revenue rate, then rides the stock assign2
// handler — pooled workspace, telemetry, checks and cancellation come
// from the shared pipeline. Registered at package init.
func init() {
	a2, ok := engine.Lookup("assign2")
	if !ok {
		panic("hosting: assign2 backend not registered")
	}
	engine.Register(engine.Backend{
		Name:       "hosting",
		Doc:        "revenue-rate Algorithm 2 over a service deployment (request Payload: *hosting.Deployment)",
		Guaranteed: true,
		Handle: func(ctx context.Context, req *engine.Request, resp *engine.Response) error {
			d, ok := req.Payload.(*Deployment)
			if !ok {
				return fmt.Errorf("%w: hosting backend needs Payload of type *hosting.Deployment", engine.ErrBadRequest)
			}
			in, err := d.Instance()
			if err != nil {
				return fmt.Errorf("%w: %v", engine.ErrBadRequest, err)
			}
			req.Instance = in
			return a2.Handle(ctx, req, resp)
		},
	})
}

// Solution is a solved deployment: the placement, its modeled revenue
// rate, and the super-optimal upper bound on any placement's revenue.
type Solution struct {
	Assignment core.Assignment
	Revenue    float64 // Σ u_i(alloc_i), $/s under the revenue model
	Bound      float64 // pooled-capacity upper bound on Revenue
}

// Solve places the deployment's services with the paper's Algorithm 2
// through the engine pipeline.
func (d *Deployment) Solve() (Solution, error) {
	var resp engine.Response
	req := engine.Request{Backend: "hosting", Payload: d, WantUtility: true}
	if err := engine.Default().SolveInto(context.Background(), &req, &resp); err != nil {
		return Solution{}, err
	}
	return Solution{Assignment: resp.Assignment, Revenue: resp.Utility, Bound: resp.Bound}, nil
}
