package alloc

import (
	"math"

	"aa/internal/utility"
)

// ConcaveRef is the unpruned reference water-filling allocator: every
// λ-probe re-evaluates every thread's inverse derivative. It is the
// implementation Concave had before the pruned fast path and is retained
// as the oracle for differential tests (TestConcaveMatchesRef, the check
// harness) and for the before/after benchmarks; production callers should
// use Concave / ConcaveInto.
func ConcaveRef(fs []utility.Func, budget float64) Result {
	n := len(fs)
	alloc := make([]float64, n)
	if n == 0 || budget <= 0 {
		return Result{Alloc: alloc}
	}

	// Trivial case: budget covers every cap.
	capSum := 0.0
	for _, f := range fs {
		capSum += f.Cap()
	}
	if capSum <= budget {
		for i, f := range fs {
			alloc[i] = f.Cap()
		}
		return Result{Alloc: alloc, Total: TotalValue(fs, alloc)}
	}

	// Find hi with sumAt(hi) <= budget by doubling. λ = 0 gives capSum >
	// budget, so the optimal λ is positive.
	iterations := 0
	lo, hi := 0.0, 1.0
	for sumAt(fs, hi, alloc) > budget {
		iterations++
		lo = hi
		hi *= 2
		if hi > 1e18 {
			break // derivatives are astronomically steep; give up doubling
		}
	}

	// Bisect λ. 100 iterations gives ~2^-100 relative precision, far past
	// float64; we stop early once the interval is negligible.
	for iter := 0; iter < 200 && hi-lo > 1e-15*(1+hi); iter++ {
		iterations++
		mid := 0.5 * (lo + hi)
		if sumAt(fs, mid, alloc) > budget {
			lo = mid
		} else {
			hi = mid
		}
	}

	// Use the feasible end (λ = hi ⇒ sum <= budget), then hand out any
	// remaining budget to plateau threads: those that would take more at
	// λ = lo. Giving them the leftovers is optimal because their marginal
	// utility in the gap is exactly the water level.
	sum := sumAt(fs, hi, alloc)
	if sum > budget {
		// The doubling search gave up: scale back onto the budget (see the
		// matching comment in ConcaveInto).
		scale := budget / sum
		for i := range alloc {
			alloc[i] *= scale
		}
		return Result{Alloc: alloc, Total: TotalValue(fs, alloc), Lambda: hi, Iterations: iterations}
	}
	remaining := budget - sum
	if remaining > 0 {
		for i, f := range fs {
			if remaining <= 1e-12*budget {
				break
			}
			more := utility.InverseDeriv(f, lo, 1e-12) - alloc[i]
			if more <= 0 {
				continue
			}
			grant := math.Min(more, remaining)
			alloc[i] += grant
			remaining -= grant
		}
	}
	return Result{Alloc: alloc, Total: TotalValue(fs, alloc), Lambda: hi, Iterations: iterations}
}
