// The replay harness proper: expand a scenario into a trace, play it
// through online.SimulateOpts with the chosen policy riding a
// latency-counting engine pipeline (or a live aaserve endpoint), and
// fold the per-event observations into a Report.
//
// Virtual clock. The trace supplies virtual event times; between
// events nothing happens, so the harness runs at whatever speed the
// hardware allows ("accelerated virtual time"). Re-solve latency in
// virtual time comes from a deterministic cost model — one solve of n
// threads on m servers occupies a single virtual solver for
// SolveCost·(n+m)·log2(n+m+2) seconds, with later solves queueing FIFO
// behind it — so queue-depth trajectories and virtual latency
// percentiles are bit-reproducible. Wall-clock latency is measured
// around each policy reaction and reported separately (Report.Wall),
// outside the determinism contract.
package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"syscall"
	"time"

	"aa/internal/cache"
	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/instio"
	"aa/internal/online"
	"aa/internal/stats"
	"aa/internal/telemetry"
	"aa/internal/utility"
)

// RunOptions parameterize one replay run.
type RunOptions struct {
	// Seed derives every random stream of the run.
	Seed uint64
	// Addr, when non-empty, replays against a live aaserve endpoint
	// (http://Addr/solve) instead of the in-process engine. Only the
	// full-resolve policy is supported remotely.
	Addr string
	// Events, when non-nil, is a pre-expanded timeline (a recorded
	// trace); nil generates the scenario's synthetic trace from Seed.
	Events []online.Event
	// Cache, when non-nil and not ModeOff, installs the solve-result
	// cache in the replay engine and adds a cache section to the report.
	// Replay determinism requires a TTL-free cache (Config.TTL = 0):
	// solves happen in event order, so hit/miss/warm counts are then a
	// pure function of the trace. Ignored for remote (Addr) replays —
	// caching happens server-side there.
	Cache cache.Cache
	// WarmK bounds the cache's warm-start repair (engine.Options.WarmK).
	WarmK int
}

// solveObserver collects what the engine middleware (or the HTTP
// policy) sees per re-solve: the count and the wall latency.
type solveObserver struct {
	count    int
	failures int
	wallSec  []float64
}

func (o *solveObserver) observe(wall time.Duration) {
	o.count++
	o.wallSec = append(o.wallSec, wall.Seconds())
}

// fail records a solve that never produced an assignment — a remote
// round trip that exhausted its retries. In-process runs never fail.
func (o *solveObserver) fail() { o.failures++ }

// middleware returns an engine middleware that counts and times every
// solve dispatched through the injected pipeline — the replay harness's
// hook into the real engine middleware chain.
func (o *solveObserver) middleware() engine.Middleware {
	return func(next engine.Handler) engine.Handler {
		return func(ctx context.Context, req *engine.Request, resp *engine.Response) error {
			start := time.Now()
			err := next(ctx, req, resp)
			o.observe(time.Since(start))
			return err
		}
	}
}

// Run replays the scenario under the options and returns its report.
func Run(sc *Scenario, opts RunOptions) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	events := opts.Events
	var tstats TraceStats
	if events == nil {
		var err error
		events, tstats, err = Trace(sc, opts.Seed)
		if err != nil {
			return nil, err
		}
	} else {
		tstats = statsOf(events, sc.Horizon)
	}

	span := telemetry.StartSpan("replay.run",
		telemetry.String("scenario", sc.Name), telemetry.Int("events", tstats.Events))
	defer span.End()

	obs := &solveObserver{}
	var policy online.Policy
	if opts.Addr != "" {
		if sc.policyName() != "full-resolve" {
			return nil, fmt.Errorf("replay: remote replay (-addr) supports only the full-resolve policy, scenario wants %q", sc.policyName())
		}
		// The run span parents the per-event replay.event spans, whose
		// traceparent headers link the remote aaserve spans in turn.
		policy = &httpResolve{addr: opts.Addr, obs: obs, parent: span.Context()}
	} else {
		eng := engine.New(engine.Options{
			Middleware: []engine.Middleware{obs.middleware()},
			Cache:      opts.Cache,
			WarmK:      opts.WarmK,
		})
		defer eng.Close()
		switch sc.policyName() {
		case "full-resolve":
			policy = online.FullResolve{Engine: eng}
		case "incremental":
			policy = online.Incremental{}
		case "hybrid":
			thr := sc.HybridThreshold
			if thr == 0 {
				thr = core.Alpha
			}
			policy = online.Hybrid{Threshold: thr, Engine: eng}
		default:
			return nil, fmt.Errorf("replay: unknown policy %q", sc.policyName())
		}
	}

	acc := newAccumulator(sc, obs)
	wallStart := time.Now()
	res, err := online.SimulateOpts(sc.Servers, sc.Capacity, events, policy,
		online.Options{Horizon: sc.Horizon, Hook: acc.hook})
	if err != nil {
		return nil, fmt.Errorf("replay: scenario %q: %w", sc.Name, err)
	}
	wallTotal := time.Since(wallStart)

	if telemetry.Enabled() {
		reg := telemetry.Default
		reg.Counter(telemetry.Label("aa_replay_runs_total", "scenario", sc.Name)).Inc()
		reg.Counter(telemetry.Label("aa_replay_events_total", "scenario", sc.Name)).Add(uint64(tstats.Events))
		reg.Counter(telemetry.Label("aa_replay_resolves_total", "scenario", sc.Name)).Add(uint64(obs.count))
	}

	rep := acc.report(sc, opts, tstats, res, obs, wallTotal)
	if opts.Addr == "" && opts.Cache != nil && opts.Cache.Mode() != cache.ModeOff {
		rep.Cache = newCacheStats(opts.Cache)
	}
	return rep, nil
}

// newCacheStats folds a cache's counters into the report section,
// deriving the hit and warm-start rates over the cacheable requests
// (bypasses excluded).
func newCacheStats(c cache.Cache) *CacheStats {
	st := c.Stats()
	cs := &CacheStats{
		Mode:       string(c.Mode()),
		Hits:       st.Hits,
		Misses:     st.Misses,
		WarmStarts: st.WarmStarts,
		Stores:     st.Stores,
		Evictions:  st.Evictions,
		Bypasses:   st.Bypasses,
	}
	if lookups := st.Hits + st.Misses; lookups > 0 {
		cs.HitRate = float64(st.Hits) / float64(lookups)
		cs.WarmRate = float64(st.WarmStarts) / float64(lookups)
	}
	return cs
}

// accumulator folds per-event hook observations into the report: the
// utility/bound integrals, the virtual solve queue, and the trajectory
// samples. All arithmetic is in deterministic event order.
type accumulator struct {
	sc        *Scenario
	solveCost float64

	prevT       float64
	prevUtil    float64
	prevBound   float64
	utilInt     float64
	boundInt    float64
	finalUtil   float64
	finalBound  float64
	finalUp     int
	lastSolves  int
	resolves    int
	migrations  int
	queue       []float64 // virtual completion times of in-flight solves
	busyUntil   float64
	virtLatency []float64
	queuePeak   int

	grid    []Sample
	gridIdx int

	// scratch for the bound instance
	ids []int
	fs  []utility.Func

	obs *solveObserver
}

func newAccumulator(sc *Scenario, obs *solveObserver) *accumulator {
	n := sc.gridPoints()
	a := &accumulator{sc: sc, solveCost: sc.solveCost(), finalUp: sc.Servers, obs: obs}
	a.grid = make([]Sample, 0, n+1)
	return a
}

// gridTimes returns the k-th sample time.
func (a *accumulator) gridTime(k int) float64 {
	n := a.sc.gridPoints()
	return a.sc.Horizon * float64(k) / float64(n)
}

// advanceTo fills trajectory samples strictly before t with the current
// carried state and pops completed virtual solves.
func (a *accumulator) advanceTo(t float64) {
	n := a.sc.gridPoints()
	for a.gridIdx <= n {
		st := a.gridTime(a.gridIdx)
		if st >= t {
			break
		}
		a.sampleAt(st)
		a.gridIdx++
	}
}

// sampleAt records one trajectory point at virtual time st using the
// carried (post-previous-event) state.
func (a *accumulator) sampleAt(st float64) {
	depth := 0
	for _, done := range a.queue {
		if done > st {
			depth++
		}
	}
	a.grid = append(a.grid, Sample{
		T:          st,
		Threads:    len(a.ids),
		UpServers:  a.finalUp,
		QueueDepth: depth,
		Resolves:   a.resolves,
		Utility:    a.prevUtil,
		Bound:      a.prevBound,
	})
}

// hook is the online.Options.Hook: called after every applied event.
func (a *accumulator) hook(info online.EventInfo, s *online.State) {
	t := info.Event.Time
	// Integrate the piecewise-constant utility and bound up to t.
	a.utilInt += a.prevUtil * (t - a.prevT)
	a.boundInt += a.prevBound * (t - a.prevT)
	a.advanceTo(t)

	// Pop virtual solves that completed by now.
	for len(a.queue) > 0 && a.queue[0] <= t {
		a.queue = a.queue[1:]
	}

	// Recompute the instantaneous utility and super-optimal bound of
	// the post-event state, in sorted-id order.
	a.ids = a.ids[:0]
	a.fs = a.fs[:0]
	for id := range s.Threads {
		a.ids = append(a.ids, id)
	}
	sortInts(a.ids)
	for _, id := range a.ids {
		a.fs = append(a.fs, s.Threads[id])
	}
	up := s.UpCount()
	a.finalUp = up
	a.prevUtil = s.TotalUtility()
	a.prevBound = 0
	if len(a.fs) > 0 && up > 0 {
		in := core.Instance{M: up, C: s.C, Threads: a.fs}
		a.prevBound = core.SuperOptimal(&in).Total
	}
	a.prevT = t
	a.migrations += info.Migrated

	// Charge the virtual solver for any re-solves this event issued.
	newSolves := a.obs.count - a.lastSolves
	a.lastSolves = a.obs.count
	for k := 0; k < newSolves; k++ {
		nm := float64(len(a.fs) + a.sc.Servers)
		service := a.solveCost * nm * math.Log2(nm+2)
		if a.busyUntil < t {
			a.busyUntil = t
		}
		a.busyUntil += service
		a.queue = append(a.queue, a.busyUntil)
		a.virtLatency = append(a.virtLatency, a.busyUntil-t)
		a.resolves++
	}
	if d := len(a.queue); d > a.queuePeak {
		a.queuePeak = d
	}
}

// report closes the integrals at the horizon, fills the trajectory tail
// and assembles the Report.
func (a *accumulator) report(sc *Scenario, opts RunOptions, tstats TraceStats,
	res online.Result, obs *solveObserver, wallTotal time.Duration) *Report {
	a.utilInt += a.prevUtil * (sc.Horizon - a.prevT)
	a.boundInt += a.prevBound * (sc.Horizon - a.prevT)
	// Remaining samples up to and including the horizon.
	n := sc.gridPoints()
	for a.gridIdx <= n {
		a.sampleAt(a.gridTime(a.gridIdx))
		a.gridIdx++
	}

	ratio := 0.0
	if a.boundInt > 0 {
		ratio = a.utilInt / a.boundInt
	}
	rep := &Report{
		Scenario: ScenarioInfo{
			Name:    sc.Name,
			Policy:  sc.policyName(),
			Solver:  solverLabel(opts),
			Servers: sc.Servers, Capacity: sc.Capacity, Horizon: sc.Horizon,
			SolveCost: sc.solveCost(),
		},
		Seed:  opts.Seed,
		Trace: tstats,
		Utility: UtilityStats{
			Integral:      a.utilInt,
			BoundIntegral: a.boundInt,
			Ratio:         ratio,
			Final:         a.prevUtil,
			FinalBound:    a.prevBound,
			FinalThreads:  res.FinalThreads,
		},
		Solves: SolveStats{
			Resolves:   a.resolves,
			Failed:     obs.failures,
			Migrations: a.migrations,
			VirtualP50: stats.Quantile(a.virtLatency, 0.50),
			VirtualP99: stats.Quantile(a.virtLatency, 0.99),
			VirtualMax: maxOf(a.virtLatency),
			QueuePeak:  a.queuePeak,
		},
		Trajectory: a.grid,
	}
	rep.Wall = &WallStats{
		TotalSec:    wallTotal.Seconds(),
		SolveP50Sec: stats.Quantile(obs.wallSec, 0.50),
		SolveP99Sec: stats.Quantile(obs.wallSec, 0.99),
	}
	if wallTotal > 0 && tstats.Events > 0 {
		rep.Wall.EventsPerSec = float64(tstats.Events) / wallTotal.Seconds()
	}
	return rep
}

func solverLabel(opts RunOptions) string {
	if opts.Addr != "" {
		return "http"
	}
	return "engine"
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// sortInts is a tiny insertion sort: the hook's id slice is nearly
// sorted between events, and avoiding sort.Ints keeps the hook free of
// interface conversions on the hot path. Large slices (a bigfleet batch
// arrives in arbitrary map order) fall back to sort.Ints — insertion
// sort would go quadratic on 10⁵+ unsorted ids.
func sortInts(xs []int) {
	if len(xs) > 256 {
		sort.Ints(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// httpResolve is the remote full-resolve policy: every event snapshots
// the active set over the up servers, POSTs it to a live aaserve
// /solve endpoint, and applies the returned assignment. The wire round
// trip is the measured solve latency. With tracing on, every event
// solve runs under its own replay.event span (child of the replay.run
// span) whose context crosses to the server as the traceparent header,
// so the client-side trace and the aaserve trace join into one tree.
type httpResolve struct {
	addr   string
	obs    *solveObserver
	parent telemetry.SpanContext
	client http.Client
	sleep  func(time.Duration) // backoff hook; nil = time.Sleep
}

// Retry policy for the remote round trip. A replayed cluster restarts
// nodes and relays mid-run, so a refused connection or a backpressure
// status is a transient, not a failed solve — retry with doubling
// backoff before counting it against the run.
const (
	retryMax     = 5
	retryBase    = 25 * time.Millisecond
	retryBackoff = 500 * time.Millisecond
)

// retryableStatus reports whether an HTTP status is worth re-sending
// the same request for: backpressure (429), a dying hop (502) or a
// draining node (503).
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// retryableErr reports whether a transport error means "nobody is
// listening yet" rather than "the request is broken": connection
// refused is the restart window of a node or relay coming back up.
func retryableErr(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED)
}

// post sends body to the node's /solve with capped exponential backoff,
// rebuilding the request per attempt from the buffered bytes. It
// returns the first definitive response; nil means retries ran out.
func (p *httpResolve) post(body []byte, traceparent string) *http.Response {
	sleep := p.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	wait := retryBase
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, "http://"+p.addr+"/solve", bytes.NewReader(body))
		if err != nil {
			return nil
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := p.client.Do(req)
		switch {
		case err != nil:
			if !retryableErr(err) || attempt == retryMax {
				return nil
			}
		case retryableStatus(resp.StatusCode):
			io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
			resp.Body.Close()
			if attempt == retryMax {
				return nil
			}
		default:
			return resp
		}
		sleep(wait)
		if wait *= 2; wait > retryBackoff {
			wait = retryBackoff
		}
	}
}

// Name implements online.Policy.
func (*httpResolve) Name() string { return "full-resolve(http)" }

// React implements online.Policy.
func (p *httpResolve) React(s *online.State, ev online.Event) []int {
	for id := range s.Place {
		if _, ok := s.Threads[id]; !ok {
			delete(s.Place, id)
		}
	}
	var ids, up []int
	for id := range s.Threads {
		ids = append(ids, id)
	}
	sortInts(ids)
	for j := 0; j < s.M; j++ {
		if s.ServerUp(j) {
			up = append(up, j)
		}
	}
	if len(ids) == 0 || len(up) == 0 {
		return nil
	}
	fs := make([]utility.Func, len(ids))
	for k, id := range ids {
		fs[k] = s.Threads[id]
	}
	in := core.Instance{M: len(up), C: s.C, Threads: fs}

	var buf bytes.Buffer
	if err := instio.Encode(&buf, &in); err != nil {
		return nil
	}
	var span telemetry.Span
	if telemetry.TraceEnabled() {
		span = telemetry.StartSpanIn(p.parent, "replay.event",
			telemetry.Int("n", len(ids)), telemetry.Int("m", len(up)))
		defer span.End()
	}
	start := time.Now()
	resp := p.post(buf.Bytes(), span.Context().Traceparent())
	if resp == nil {
		p.obs.fail()
		return nil
	}
	defer resp.Body.Close()
	var out instio.AssignmentJSON
	if resp.StatusCode != http.StatusOK {
		p.obs.fail()
		return nil
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&out); err != nil {
		p.obs.fail()
		return nil
	}
	p.obs.observe(time.Since(start))
	if len(out.Server) != len(ids) || len(out.Alloc) != len(ids) {
		return nil
	}
	var migrated []int
	for k, id := range ids {
		old, existed := s.Place[id]
		srv := out.Server[k]
		if srv < 0 || srv >= len(up) {
			return migrated
		}
		next := online.Placement{Server: up[srv], Alloc: out.Alloc[k]}
		self := id == ev.ID && ev.Kind != online.Fail && ev.Kind != online.Recover
		if existed && !self && old.Server != next.Server {
			migrated = append(migrated, id)
		}
		s.Place[id] = next
	}
	return migrated
}
