package cachesim

import (
	"context"
	"fmt"
	"math"

	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/rng"
)

// Solve routes an AA solve through the shared engine pipeline, so
// cache-partition solves pick up the pooled workspace, telemetry and
// process-wide invariant checks.
func Solve(in *core.Instance) (core.Assignment, error) { return solveAA(in) }

func solveAA(in *core.Instance) (core.Assignment, error) {
	var resp engine.Response
	req := engine.Request{Instance: in}
	if err := engine.Default().SolveInto(context.Background(), &req, &resp); err != nil {
		return core.Assignment{}, err
	}
	return resp.Assignment, nil
}

// Adaptive is the online-measurement controller from the paper's future
// work (§VIII: "integrate online performance measurements into our
// algorithms to produce dynamically optimal assignments"). Instead of
// profiling every thread at every way count offline, it learns miss-rate
// curves from the allocations that actually run:
//
//   - each epoch, every thread runs under the current partition and the
//     controller records an EWMA hit-rate sample at its current way
//     count;
//   - unknown parts of each curve are interpolated between samples and
//     extrapolated optimistically (continuing the last observed slope,
//     clamped at hit rate 1), so the solver keeps probing threads whose
//     curves still look like they are rising — exploration emerges from
//     optimism rather than explicit randomization;
//   - the AA solver re-runs every epoch on the estimated utilities.
//
// Phase changes (a thread switching behaviour) are absorbed by the EWMA.
type Adaptive struct {
	Cfg     Config
	Sockets int
	Model   ThroughputModel
	// Alpha is the EWMA weight of new samples in (0, 1]; 0 defaults to 0.5.
	Alpha float64
	// Forget expires samples not refreshed for this many epochs, letting
	// the optimistic prior (and hence exploration) return — the
	// mechanism that re-probes starved threads after a phase change.
	// 0 defaults to 5.
	Forget int
	// Explore is the per-socket probability of a one-way probe each
	// epoch: one way moves from the socket's richest thread to another
	// thread on the socket, sampling interior allocations the solver's
	// corner solutions would never visit. 0 defaults to 0.75; set
	// negative to disable.
	Explore float64

	est   []map[int]sample // per-thread: ways -> smoothed hit rate
	epoch int
}

// sample is one smoothed measurement and when it was last refreshed.
type sample struct {
	value float64
	seen  int // epoch of last refresh
}

// NewAdaptive creates a controller for n threads.
func NewAdaptive(cfg Config, sockets int, model ThroughputModel, n int) *Adaptive {
	a := &Adaptive{Cfg: cfg, Sockets: sockets, Model: model, Alpha: 0.5, Forget: 5, Explore: 0.75}
	a.est = make([]map[int]sample, n)
	for i := range a.est {
		a.est[i] = map[int]sample{}
	}
	return a
}

// observe folds a measured hit rate at a way count into the estimate.
// Zero-way measurements are discarded: the hit rate at 0 ways is 0 by
// construction and carries no information about the thread.
func (a *Adaptive) observe(thread, ways int, hitRate float64) {
	if ways == 0 {
		return
	}
	alpha := a.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	if old, ok := a.est[thread][ways]; ok {
		a.est[thread][ways] = sample{value: (1-alpha)*old.value + alpha*hitRate, seen: a.epoch}
	} else {
		a.est[thread][ways] = sample{value: hitRate, seen: a.epoch}
	}
}

// freshSamples returns the unexpired samples of a thread.
func (a *Adaptive) freshSamples(thread int) map[int]float64 {
	forget := a.Forget
	if forget <= 0 {
		forget = 5
	}
	out := map[int]float64{}
	for w, s := range a.est[thread] {
		if a.epoch-s.seen < forget {
			out[w] = s.value
		}
	}
	return out
}

// estimatedProfile reconstructs a full hit-rate curve from the sparse
// samples of one thread: linear interpolation between known way counts,
// optimistic linear extrapolation beyond the largest known sample, and
// monotone repair. With no samples at all the curve is the pure optimist
// (linearly rising to 1), which forces an initial measurement.
func (a *Adaptive) estimatedProfile(thread int) Profile {
	w := a.Cfg.Ways
	curve := make([]float64, w+1)
	known := a.freshSamples(thread)
	if len(known) == 0 {
		for x := 0; x <= w; x++ {
			curve[x] = float64(x) / float64(w)
		}
		return Profile{HitRate: curve}
	}
	// Collect known points in way order; hit rate at 0 ways is 0 by
	// construction of the cache model.
	xs := []int{0}
	ys := []float64{0}
	for x := 1; x <= w; x++ {
		if v, ok := known[x]; ok {
			xs = append(xs, x)
			ys = append(ys, v)
		}
	}
	// Interpolate between knowns.
	for k := 0; k+1 < len(xs); k++ {
		x0, x1 := xs[k], xs[k+1]
		for x := x0; x <= x1; x++ {
			t := 0.0
			if x1 > x0 {
				t = float64(x-x0) / float64(x1-x0)
			}
			curve[x] = ys[k] + t*(ys[k+1]-ys[k])
		}
	}
	// Optimistic extrapolation past the last known sample: continue the
	// last segment's slope (or a default climb if only one sample).
	last := xs[len(xs)-1]
	slope := 0.0
	if len(xs) >= 2 {
		prev := xs[len(xs)-2]
		slope = (ys[len(xs)-1] - ys[len(xs)-2]) / float64(last-prev)
		if slope < 0 {
			slope = 0
		}
	} else {
		slope = (1 - ys[len(xs)-1]) / float64(w-last+1)
	}
	for x := last + 1; x <= w; x++ {
		curve[x] = math.Min(1, curve[x-1]+slope)
	}
	// Monotone repair (EWMA noise can locally invert the order).
	for x := 1; x <= w; x++ {
		if curve[x] < curve[x-1] {
			curve[x] = curve[x-1]
		}
	}
	return Profile{HitRate: curve}
}

// EpochResult reports one adaptive epoch.
type EpochResult struct {
	Ways       []int
	Throughput float64 // measured aggregate this epoch
}

// Epoch runs one epoch: solve AA on the current estimates, run every
// thread for accesses under the resulting partition (generating fresh
// traces from gens), record measurements, and report the measured
// aggregate throughput.
func (a *Adaptive) Epoch(gens []TraceGen, accesses int, r *rng.Rand) (EpochResult, error) {
	n := len(gens)
	if n != len(a.est) {
		return EpochResult{}, fmt.Errorf("cachesim: %d generators for %d threads", n, len(a.est))
	}
	// Build utilities from the estimated profiles.
	in := &core.Instance{M: a.Sockets, C: float64(a.Cfg.Ways)}
	profiles := make([]Profile, n)
	for i := 0; i < n; i++ {
		profiles[i] = a.estimatedProfile(i)
		f, err := profiles[i].Utility(a.Model)
		if err != nil {
			return EpochResult{}, fmt.Errorf("cachesim: thread %d estimate: %w", i, err)
		}
		in.Threads = append(in.Threads, f)
	}
	sol, err := solveAA(in)
	if err != nil {
		return EpochResult{}, fmt.Errorf("cachesim: epoch solve: %w", err)
	}
	ways := QuantizeWays(in, sol, a.Cfg.Ways)
	a.explore(sol.Server, ways, r.Split(1<<32))

	res := EpochResult{Ways: ways}
	for i := 0; i < n; i++ {
		trace := gens[i].Generate(accesses, r.Split(uint64(i)))
		hits, total, err := SimulateHits(a.Cfg, ways[i], trace)
		if err != nil {
			return EpochResult{}, fmt.Errorf("cachesim: epoch thread %d: %w", i, err)
		}
		hr := float64(hits) / float64(total)
		a.observe(i, ways[i], hr)
		res.Throughput += a.Model.Throughput(hr)
	}
	a.epoch++
	return res, nil
}

// explore perturbs the quantized allocation in place: per socket, with
// probability Explore, one way moves from the richest thread to a
// uniformly random other thread on the socket.
func (a *Adaptive) explore(servers []int, ways []int, r *rng.Rand) {
	p := a.Explore
	if p == 0 {
		p = 0.75
	}
	if p < 0 {
		return
	}
	for j := 0; j < a.Sockets; j++ {
		if r.Float64() >= p {
			continue
		}
		var members []int
		for i, s := range servers {
			if s == j {
				members = append(members, i)
			}
		}
		if len(members) < 2 {
			continue
		}
		donor := members[0]
		for _, i := range members[1:] {
			if ways[i] > ways[donor] {
				donor = i
			}
		}
		if ways[donor] == 0 {
			continue
		}
		receiver := donor
		for receiver == donor {
			receiver = members[r.Intn(len(members))]
		}
		ways[donor]--
		ways[receiver]++
	}
}

// Run executes epochs consecutive epochs and returns their results.
func (a *Adaptive) Run(gens []TraceGen, epochs, accesses int, r *rng.Rand) ([]EpochResult, error) {
	out := make([]EpochResult, 0, epochs)
	for e := 0; e < epochs; e++ {
		res, err := a.Epoch(gens, accesses, r.Split(uint64(e)))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// OfflineReference computes the measured throughput of the full offline
// pipeline (complete profiling + AA + DP refinement) on one trace draw —
// the target the adaptive controller should approach.
func OfflineReference(cfg Config, sockets int, gens []TraceGen, model ThroughputModel, accesses int, r *rng.Rand) (float64, error) {
	workloads := GenerateWorkloads(gens, accesses, model, r)
	in, profiles, err := BuildInstance(cfg, sockets, workloads)
	if err != nil {
		return 0, err
	}
	sol, err := solveAA(in)
	if err != nil {
		return 0, err
	}
	ways := OptimizeWays(cfg, sockets, workloads, profiles, sol)
	res, err := CoRunWays(cfg, sockets, workloads, sol, ways)
	if err != nil {
		return 0, err
	}
	return res.Total, nil
}
