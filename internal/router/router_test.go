package router

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustNew(t *testing.T, s Strategy, nodes ...Node) *Router {
	t.Helper()
	r, err := New(s, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseStrategy(t *testing.T) {
	for in, want := range map[string]Strategy{
		"round-robin":       RoundRobin,
		"rr":                RoundRobin,
		"least-loaded":      LeastLoaded,
		"least_loaded":      LeastLoaded,
		"LL":                LeastLoaded,
		"weighted-failover": WeightedFailover,
		"weighted_failover": WeightedFailover,
		"failover":          WeightedFailover,
		" Weighted ":        WeightedFailover,
	} {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseStrategy("fastest"); err == nil {
		t.Error("ParseStrategy accepted an unknown strategy")
	}
}

func TestParseNodes(t *testing.T) {
	nodes, err := ParseNodes("n1=10.0.0.1:8080*2, 10.0.0.2:8080 ,n3=10.0.0.3:8080")
	if err != nil {
		t.Fatal(err)
	}
	want := []Node{
		{Name: "n1", Addr: "10.0.0.1:8080", Weight: 2},
		{Addr: "10.0.0.2:8080"},
		{Name: "n3", Addr: "10.0.0.3:8080"},
	}
	if len(nodes) != len(want) {
		t.Fatalf("got %d nodes, want %d", len(nodes), len(want))
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("node %d = %+v, want %+v", i, nodes[i], want[i])
		}
	}
	for _, bad := range []string{"", " , ", "a:1*x", "a:1*-2"} {
		if _, err := ParseNodes(bad); err == nil {
			t.Errorf("ParseNodes(%q) accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(RoundRobin, nil); err == nil {
		t.Error("New accepted an empty node set")
	}
	if _, err := New(RoundRobin, []Node{{Addr: ""}}); err == nil {
		t.Error("New accepted an empty address")
	}
	if _, err := New(RoundRobin, []Node{{Addr: "a:1"}, {Addr: "a:1"}}); err == nil {
		t.Error("New accepted duplicate addresses")
	}
	// Defaults: name = addr, weight = 1.
	r := mustNew(t, RoundRobin, Node{Addr: "a:1"})
	st := r.Snapshot()[0]
	if st.Name != "a:1" || st.Weight != 1 || st.State != Ready {
		t.Fatalf("defaults not applied: %+v", st)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	r := mustNew(t, RoundRobin, Node{Addr: "a:1"}, Node{Addr: "b:1"}, Node{Addr: "c:1"})
	var got []string
	for i := 0; i < 6; i++ {
		n, err := r.Pick(nil)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, n.Addr)
		r.Done(n.Addr)
	}
	want := "a:1 b:1 c:1 a:1 b:1 c:1"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("rotation %q, want %q", s, want)
	}
}

func TestRoundRobinSkipsUnready(t *testing.T) {
	r := mustNew(t, RoundRobin, Node{Addr: "a:1"}, Node{Addr: "b:1"}, Node{Addr: "c:1"})
	r.setProbe("b:1", Down, 0, false)
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		n, err := r.Pick(nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[n.Addr]++
		r.Done(n.Addr)
	}
	if seen["b:1"] != 0 || seen["a:1"] != 2 || seen["c:1"] != 2 {
		t.Fatalf("distribution %v, want a and c only", seen)
	}
}

func TestPickExcludeAndExhaustion(t *testing.T) {
	r := mustNew(t, RoundRobin, Node{Addr: "a:1"}, Node{Addr: "b:1"})
	n1, err := r.Pick(map[string]bool{"a:1": true})
	if err != nil || n1.Addr != "b:1" {
		t.Fatalf("Pick with a excluded = %v, %v; want b", n1.Addr, err)
	}
	_, err = r.Pick(map[string]bool{"a:1": true, "b:1": true})
	if !errors.Is(err, ErrNoNodes) {
		t.Fatalf("exhausted Pick error = %v, want ErrNoNodes", err)
	}
	r.setProbe("a:1", Draining, 0, false)
	r.setProbe("b:1", Down, 0, false)
	if _, err := r.Pick(nil); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("all-unready Pick error = %v, want ErrNoNodes", err)
	}
}

func TestLeastLoadedUsesDepthAndInflight(t *testing.T) {
	r := mustNew(t, LeastLoaded, Node{Addr: "a:1"}, Node{Addr: "b:1"}, Node{Addr: "c:1"})
	r.setProbe("a:1", Ready, 5, true)
	r.setProbe("b:1", Ready, 1, true)
	r.setProbe("c:1", Ready, 3, true)
	n, _ := r.Pick(nil)
	if n.Addr != "b:1" {
		t.Fatalf("picked %s, want least-loaded b:1", n.Addr)
	}
	// b now has depth 1 + 1 in flight = 2; next pick still b (2 < 3 < 5).
	n2, _ := r.Pick(nil)
	if n2.Addr != "b:1" {
		t.Fatalf("second pick %s, want b:1", n2.Addr)
	}
	// Third pick: b at 3 ties c at 3 and config order keeps b (strict <),
	// pushing b to 4; the fourth pick shifts to c.
	n3, _ := r.Pick(nil)
	if n3.Addr != "b:1" {
		t.Fatalf("tie-break pick = %s, want b:1 (config order)", n3.Addr)
	}
	n4, _ := r.Pick(nil)
	if n4.Addr != "c:1" {
		t.Fatalf("pick after piling in-flight on b = %s, want c:1", n4.Addr)
	}
	// Done releases in-flight: b returns to depth 1 and wins again.
	for _, addr := range []string{"b:1", "b:1", "b:1"} {
		r.Done(addr)
	}
	n5, _ := r.Pick(nil)
	if n5.Addr != "b:1" {
		t.Fatalf("pick after Done = %s, want b:1", n5.Addr)
	}
}

func TestWeightedFailover(t *testing.T) {
	r := mustNew(t, WeightedFailover,
		Node{Addr: "primary:1", Weight: 10},
		Node{Addr: "standby:1", Weight: 1},
		Node{Addr: "standby2:1", Weight: 5})
	for i := 0; i < 3; i++ {
		n, _ := r.Pick(nil)
		if n.Addr != "primary:1" {
			t.Fatalf("pick %d = %s, want primary while ready", i, n.Addr)
		}
		r.Done(n.Addr)
	}
	// Primary fails: traffic moves to the heaviest standby.
	r.ObserveFailure("primary:1")
	n, _ := r.Pick(nil)
	if n.Addr != "standby2:1" {
		t.Fatalf("post-failure pick = %s, want standby2", n.Addr)
	}
	r.Done(n.Addr)
	// Primary recovers via probe: traffic returns.
	r.setProbe("primary:1", Ready, 0, true)
	n, _ = r.Pick(nil)
	if n.Addr != "primary:1" {
		t.Fatalf("post-recovery pick = %s, want primary", n.Addr)
	}
}

func TestObserveFailureMarksDownAndSnapshot(t *testing.T) {
	r := mustNew(t, RoundRobin, Node{Name: "n1", Addr: "a:1", Weight: 2}, Node{Addr: "b:1"})
	r.ObserveFailure("a:1")
	r.ObserveFailure("missing:1") // unknown addr: no-op, no panic
	st := r.Snapshot()
	if st[0].State != Down || st[0].Failures != 1 {
		t.Fatalf("snapshot[0] = %+v, want down with 1 failure", st[0])
	}
	if st[1].State != Ready {
		t.Fatalf("snapshot[1] = %+v, want ready", st[1])
	}
	if r.Strategy() != RoundRobin {
		t.Fatalf("Strategy() = %q", r.Strategy())
	}
	// A successful probe resets the failure streak.
	r.setProbe("a:1", Ready, 0, true)
	if st := r.Snapshot()[0]; st.State != Ready || st.Failures != 0 {
		t.Fatalf("post-recovery snapshot = %+v", st)
	}
}

// fakeNode is a minimal aaserve stand-in: /readyz with a switchable
// status, /metrics/history with a canned queue depth.
type fakeNode struct {
	mu      sync.Mutex
	ready   int
	depth   float64
	history int // history endpoint status; 200 serves depth
	srv     *httptest.Server
}

func newFakeNode(t *testing.T) *fakeNode {
	f := &fakeNode{ready: http.StatusOK, history: http.StatusOK}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		code := f.ready
		f.mu.Unlock()
		w.WriteHeader(code)
	})
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		code, depth := f.history, f.depth
		f.mu.Unlock()
		if code != http.StatusOK {
			w.WriteHeader(code)
			return
		}
		fmt.Fprintf(w, `{"interval_seconds":0.1,"capacity":360,"snapshots":[{"ts":"2026-01-01T00:00:00Z","metrics":{"aa_pool_queue_depth":{"type":"gauge","value":%g}}}]}`, depth)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeNode) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

func (f *fakeNode) set(ready int, depth float64) {
	f.mu.Lock()
	f.ready, f.depth = ready, depth
	f.mu.Unlock()
}

func TestProbeNow(t *testing.T) {
	up := newFakeNode(t)
	up.set(http.StatusOK, 7)
	draining := newFakeNode(t)
	draining.set(http.StatusServiceUnavailable, 0)
	noHistory := newFakeNode(t)
	noHistory.history = http.StatusNotFound
	down := newFakeNode(t)
	downAddr := down.addr()
	down.srv.Close() // transport-level refusal

	r := mustNew(t, LeastLoaded,
		Node{Name: "up", Addr: up.addr()},
		Node{Name: "draining", Addr: draining.addr()},
		Node{Name: "nohist", Addr: noHistory.addr()},
		Node{Name: "down", Addr: downAddr})
	r.ProbeNow()

	st := r.Snapshot()
	byName := map[string]NodeStatus{}
	for _, s := range st {
		byName[s.Name] = s
	}
	if s := byName["up"]; s.State != Ready || s.Depth != 7 || s.LastProbe.IsZero() {
		t.Fatalf("up = %+v, want ready depth 7", s)
	}
	if s := byName["draining"]; s.State != Draining {
		t.Fatalf("draining = %+v, want draining", s)
	}
	if s := byName["nohist"]; s.State != Ready || s.Depth != 0 {
		t.Fatalf("nohist = %+v, want ready depth 0 (404 history)", s)
	}
	if s := byName["down"]; s.State != Down {
		t.Fatalf("down = %+v, want down", s)
	}

	// Recovery and state changes propagate on the next sweep.
	draining.set(http.StatusOK, 2)
	r.ProbeNow()
	if s := r.Snapshot()[1]; s.State != Ready || s.Depth != 2 {
		t.Fatalf("recovered draining node = %+v", s)
	}
}

func TestStartProberSweeps(t *testing.T) {
	f := newFakeNode(t)
	f.set(http.StatusOK, 4)
	r := mustNew(t, LeastLoaded, Node{Addr: f.addr()})
	r.StartProber(10 * time.Millisecond)
	defer r.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if s := r.Snapshot()[0]; s.Depth == 4 && s.State == Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never refreshed: %+v", r.Snapshot()[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.set(http.StatusServiceUnavailable, 0)
	deadline = time.Now().Add(3 * time.Second)
	for {
		if s := r.Snapshot()[0]; s.State == Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never saw the drain: %+v", r.Snapshot()[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
}

func TestStopWithoutProber(t *testing.T) {
	r := mustNew(t, RoundRobin, Node{Addr: "a:1"})
	done := make(chan struct{})
	go func() { r.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop without StartProber blocked")
	}
}

func TestConcurrentPickDone(t *testing.T) {
	r := mustNew(t, LeastLoaded, Node{Addr: "a:1"}, Node{Addr: "b:1"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n, err := r.Pick(nil)
				if err != nil {
					t.Error(err)
					return
				}
				r.Done(n.Addr)
			}
		}()
	}
	wg.Wait()
	for _, s := range r.Snapshot() {
		if s.InFlight != 0 {
			t.Fatalf("in-flight leaked: %+v", s)
		}
	}
	r.Done("a:1") // over-release: clamps at 0, no panic
	if s := r.Snapshot()[0]; s.InFlight != 0 {
		t.Fatalf("Done underflowed: %+v", s)
	}
}
