package core

// A literal, unoptimized translation of the paper's Algorithm 1
// pseudocode, kept as a fidelity oracle: the production Assign1
// (which only examines the fullest server, an O(m)-per-iteration
// simplification justified in its comments) must make exactly the same
// choices under the same tie-breaking.

import (
	"testing"

	"aa/internal/rng"
)

// assign1Reference scans the full (thread, server) candidate sets U each
// iteration, exactly as written in the paper.
func assign1Reference(in *Instance, gs []Linearized) Assignment {
	n, m := in.N(), in.M
	out := NewAssignment(n)
	residual := make([]float64, m)
	for j := range residual {
		residual[j] = in.C
	}
	assigned := make([]bool, n)

	for remaining := n; remaining > 0; remaining-- {
		// U = {(i, j) : thread i unassigned, C_j >= ĉ_i}. Line 6 picks
		// the U-thread with greatest g_i(ĉ_i), first index on ties, and
		// places it on the fullest feasible server — the production
		// tie-breaks.
		bestI := -1
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			feasible := false
			for j := 0; j < m; j++ {
				if residual[j] >= gs[i].CHat {
					feasible = true
					break
				}
			}
			if !feasible {
				continue
			}
			if bestI == -1 || gs[i].UHat > gs[bestI].UHat {
				bestI = i
			}
		}
		var pick, server int
		var amount float64
		if bestI >= 0 {
			pick = bestI
			server = -1
			for j := 0; j < m; j++ {
				if residual[j] >= gs[pick].CHat &&
					(server < 0 || residual[j] > residual[server]) {
					server = j
				}
			}
			amount = gs[pick].CHat
		} else {
			// Line 9: the (thread, server) pair with greatest g_i(C_j).
			bestI, bestJ, bestVal := -1, -1, -1.0
			for i := 0; i < n; i++ {
				if assigned[i] {
					continue
				}
				for j := 0; j < m; j++ {
					if v := gs[i].Value(residual[j]); v > bestVal {
						bestI, bestJ, bestVal = i, j, v
					}
				}
			}
			pick, server = bestI, bestJ
			amount = residual[server]
		}
		assigned[pick] = true
		out.Server[pick] = server
		out.Alloc[pick] = amount
		residual[server] -= amount
		if residual[server] < 0 {
			residual[server] = 0
		}
	}
	return out
}

// The production Assign1 must achieve exactly the reference's total
// utility on random instances (identical choices up to ties between
// equal-utility options, which cannot change the total).
func TestAssign1MatchesLiteralPseudocode(t *testing.T) {
	base := rng.New(211)
	for trial := 0; trial < 25; trial++ {
		r := base.Split(uint64(trial))
		in := randomInstance(r, 2+r.Intn(18), 1+r.Intn(5), 100)
		so := SuperOptimal(in)
		gs := Linearize(in, so)
		prod := Assign1Linearized(in, gs).Utility(in)
		ref := assign1Reference(in, gs).Utility(in)
		diff := prod - ref
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9*(1+ref) {
			t.Errorf("trial %d: production %v != reference %v", trial, prod, ref)
		}
	}
}
