// Package online extends AA to a dynamic setting — the paper's third
// future-work item (§VIII): thread sets and utilities change over time
// ("in practice the utility functions of threads may change over time.
// Thus, we would like to integrate online performance measurements into
// our algorithms to produce dynamically optimal assignments").
//
// An event-driven simulator feeds a timeline of arrivals, departures,
// utility drifts (re-measurements) and server failure/recovery events to
// a rebalancing policy. Between events the system accrues total utility
// per unit time; every thread migration (server change for an
// already-placed thread) costs a fixed penalty, modelling cache-refill
// or VM move cost. Policies trade assignment quality against migration
// churn:
//
//   - FullResolve re-runs Algorithm 2 on every event (best utility, most
//     migrations),
//   - Incremental never migrates: it only re-allocates within the
//     affected server (zero churn, degrades over time),
//   - Hybrid is incremental but triggers a full re-solve when measured
//     quality drops below a threshold of the super-optimal bound.
package online

import (
	"context"
	"fmt"
	"sort"
	"time"

	"aa/internal/alloc"
	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/engine"
	"aa/internal/utility"
)

// EventKind discriminates timeline events.
type EventKind int

// Event kinds.
const (
	Arrive  EventKind = iota // a new thread appears
	Depart                   // a thread leaves
	Drift                    // a thread's utility is re-measured
	Fail                     // a server goes down (Event.ID is a server index)
	Recover                  // a failed server comes back (Event.ID is a server index)
	// ArriveBatch admits many threads at one instant (Event.Batch holds
	// the per-thread ids and utilities; Event.ID is -1). It models a
	// fleet spin-up — the million-thread regime where admitting threads
	// one event at a time would drown the timeline in bookkeeping — and
	// triggers exactly one policy reaction for the whole cohort.
	ArriveBatch
)

// String names the kind for reports and errors.
func (k EventKind) String() string {
	switch k {
	case Arrive:
		return "arrive"
	case Depart:
		return "depart"
	case Drift:
		return "drift"
	case Fail:
		return "fail"
	case Recover:
		return "recover"
	case ArriveBatch:
		return "arrive-batch"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one timeline entry. Events must be sorted by Time. For Fail
// and Recover the ID is a server index; for ArriveBatch it is -1 and
// Batch carries the cohort; for the other kinds it is a thread identity.
type Event struct {
	Time float64
	Kind EventKind
	ID   int          // thread identity (server index for Fail/Recover, -1 for ArriveBatch)
	Util utility.Func // for Arrive and Drift
	// Batch is the ArriveBatch cohort, in ascending-id order.
	Batch []BatchArrival
}

// BatchArrival is one thread of an ArriveBatch cohort.
type BatchArrival struct {
	ID   int
	Util utility.Func
}

// Placement is one thread's current server and allocation.
type Placement struct {
	Server int
	Alloc  float64
}

// State is the live system: the active threads, their placements and
// the set of failed servers.
type State struct {
	M       int
	C       float64
	Threads map[int]utility.Func
	Place   map[int]Placement
	// Down marks failed servers; nil (the common case) means all up. A
	// thread placed on a down server is infeasible — policies must
	// evacuate on Fail.
	Down []bool

	// scr holds the scratch a policy reuses across events — the sorted
	// id order, the instance snapshot, the engine request/response of a
	// full re-solve, and the per-server reallocation buffers — so a
	// steady-state event loop performs no per-event heap allocation
	// (pinned by TestReactStableAllocs). A State is single-goroutine,
	// like the simulation that owns it.
	scr struct {
		ids     []int
		uids    []int // TotalUtility's private id order (no aliasing with ids)
		threads []utility.Func
		inst    core.Instance
		req     engine.Request
		resp    engine.Response
		members []int
		capped  []cappedAt
		fs      []utility.Func
		dst     []float64
		up      []int // ascending indices of up servers
		upIdx   []int // real server index -> position in up, -1 when down
		allocSc alloc.Scratch
	}
}

// NewState returns an empty system of m servers with capacity c.
func NewState(m int, c float64) *State {
	return &State{M: m, C: c, Threads: map[int]utility.Func{}, Place: map[int]Placement{}}
}

// ids returns the active thread ids in ascending order (determinism).
// The returned slice is scratch owned by the state, valid until the
// next ids or instance call.
func (s *State) ids() []int {
	s.scr.ids = s.scr.ids[:0]
	for id := range s.Threads {
		s.scr.ids = append(s.scr.ids, id)
	}
	sort.Ints(s.scr.ids)
	return s.scr.ids
}

// ServerUp reports whether server j is up.
func (s *State) ServerUp(j int) bool {
	return s.Down == nil || j >= len(s.Down) || !s.Down[j]
}

// SetServerDown marks server j failed (down=true) or recovered.
func (s *State) SetServerDown(j int, down bool) {
	if s.Down == nil {
		if !down {
			return
		}
		s.Down = make([]bool, s.M)
	}
	s.Down[j] = down
}

// UpCount returns the number of servers currently up.
func (s *State) UpCount() int {
	if s.Down == nil {
		return s.M
	}
	n := 0
	for j := 0; j < s.M; j++ {
		if s.ServerUp(j) {
			n++
		}
	}
	return n
}

// upServers returns the ascending indices of up servers plus the
// reverse map (real index → position in the up list, -1 when down).
// Both slices are scratch owned by the state, valid until the next
// upServers or instance call.
func (s *State) upServers() (up, upIdx []int) {
	s.scr.up = s.scr.up[:0]
	if cap(s.scr.upIdx) < s.M {
		s.scr.upIdx = make([]int, s.M)
	}
	s.scr.upIdx = s.scr.upIdx[:s.M]
	for j := 0; j < s.M; j++ {
		if s.ServerUp(j) {
			s.scr.upIdx[j] = len(s.scr.up)
			s.scr.up = append(s.scr.up, j)
		} else {
			s.scr.upIdx[j] = -1
		}
	}
	return s.scr.up, s.scr.upIdx
}

// TotalUtility returns the instantaneous utility rate Σ f_i(alloc_i).
// The sum runs in ascending thread-id order so that repeated
// evaluations of the same state are bit-identical — the property the
// replay harness's determinism gate relies on (float addition is not
// associative, so map order would leak into reports).
func (s *State) TotalUtility() float64 {
	s.scr.uids = s.scr.uids[:0]
	for id := range s.Threads {
		s.scr.uids = append(s.scr.uids, id)
	}
	sort.Ints(s.scr.uids)
	total := 0.0
	for _, id := range s.scr.uids {
		total += s.Threads[id].Value(s.Place[id].Alloc)
	}
	return total
}

// Loads returns the per-server allocation sums. Placements are summed
// in ascending thread-id order: float addition is not associative, and
// policies choose servers by comparing these sums, so map-order
// accumulation would leak ULP-level nondeterminism into placement
// decisions (the replay determinism gate catches exactly this).
func (s *State) Loads() []float64 {
	loads := make([]float64, s.M)
	ids := make([]int, 0, len(s.Place))
	for id := range s.Place {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		p := s.Place[id]
		loads[p.Server] += p.Alloc
	}
	return loads
}

// Validate checks the state's placements are feasible.
func (s *State) Validate(tol float64) error {
	for id := range s.Threads {
		p, ok := s.Place[id]
		if !ok {
			return fmt.Errorf("online: thread %d unplaced", id)
		}
		if p.Server < 0 || p.Server >= s.M {
			return fmt.Errorf("online: thread %d on invalid server %d", id, p.Server)
		}
		if !s.ServerUp(p.Server) {
			return fmt.Errorf("online: thread %d placed on failed server %d", id, p.Server)
		}
		if p.Alloc < -tol {
			return fmt.Errorf("online: thread %d negative allocation", id)
		}
	}
	for id := range s.Place {
		if _, ok := s.Threads[id]; !ok {
			return fmt.Errorf("online: stale placement for departed thread %d", id)
		}
	}
	for j, load := range s.Loads() {
		if load > s.C+tol*(1+s.C) {
			return fmt.Errorf("online: server %d overloaded: %v > %v", j, load, s.C)
		}
	}
	return nil
}

// Check runs the cap-aware feasibility invariants of internal/check on
// the live state — the -check hook of aaonline. Unlike Validate it also
// enforces each thread's own utility cap (not just server capacity) and
// counts the outcome into the aa_check_* metrics.
func (s *State) Check(eps float64) error {
	in, ids, _, upIdx := s.instance()
	if len(ids) == 0 {
		return nil
	}
	a := core.NewAssignment(len(ids))
	for k, id := range ids {
		p, ok := s.Place[id]
		if !ok {
			return fmt.Errorf("%w: thread %d unplaced", check.ErrInfeasible, id)
		}
		if p.Server < 0 || p.Server >= s.M || upIdx[p.Server] < 0 {
			return fmt.Errorf("%w: thread %d placed on failed or invalid server %d",
				check.ErrInfeasible, id, p.Server)
		}
		a.Server[k] = upIdx[p.Server]
		a.Alloc[k] = p.Alloc
	}
	return check.Feasible(in, a, eps)
}

// instance builds a core.Instance snapshot over the UP servers only,
// plus the id order used, the up-server list and its reverse map: the
// instance's server index j stands for real server up[j]. With no
// failed servers the mapping is the identity. All four return values
// are scratch owned by the state, valid until the next instance or ids
// call.
func (s *State) instance() (in *core.Instance, ids, up, upIdx []int) {
	ids = s.ids()
	up, upIdx = s.upServers()
	s.scr.threads = s.scr.threads[:0]
	for _, id := range ids {
		s.scr.threads = append(s.scr.threads, s.Threads[id])
	}
	s.scr.inst = core.Instance{M: len(up), C: s.C, Threads: s.scr.threads}
	return &s.scr.inst, ids, up, upIdx
}

// reallocServer re-optimizes allocations within one server, leaving the
// thread→server map untouched. The capped wrappers, func slice and
// allocation destination are state scratch (pointers into the capped
// slice avoid per-member interface boxing), so a steady-state realloc
// allocates nothing.
func (s *State) reallocServer(j int) {
	scr := &s.scr
	scr.members = scr.members[:0]
	for _, id := range s.ids() {
		if s.Place[id].Server == j {
			scr.members = append(scr.members, id)
		}
	}
	n := len(scr.members)
	if n == 0 {
		return
	}
	if cap(scr.capped) < n {
		scr.capped = make([]cappedAt, n)
		scr.fs = make([]utility.Func, n)
	}
	scr.capped = scr.capped[:n]
	scr.fs = scr.fs[:n]
	for k, id := range scr.members {
		f := s.Threads[id]
		scr.capped[k] = cappedAt{f: f, c: minFloat(f.Cap(), s.C)}
		scr.fs[k] = &scr.capped[k]
	}
	res := alloc.ConcaveWith(&scr.allocSc, scr.dst, scr.fs, s.C)
	scr.dst = res.Alloc
	for k, id := range scr.members {
		s.Place[id] = Placement{Server: j, Alloc: res.Alloc[k]}
	}
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// cappedAt mirrors core's internal capacity clamp for local reallocation.
type cappedAt struct {
	f utility.Func
	c float64
}

func (cf cappedAt) Value(x float64) float64 {
	if x > cf.c {
		x = cf.c
	}
	return cf.f.Value(x)
}

func (cf cappedAt) Deriv(x float64) float64 {
	if x >= cf.c {
		return 0
	}
	return cf.f.Deriv(x)
}

func (cf cappedAt) Cap() float64 { return cf.c }

// Policy reacts to an applied event by updating placements. Applying the
// event (mutating Threads) is the simulator's job; the policy only
// repairs Place. It returns the set of migrated thread ids (server
// changes of threads that existed before the event).
type Policy interface {
	Name() string
	React(s *State, ev Event) (migrated []int)
}

// FullResolve re-runs Algorithm 2 on the active set after every event.
// Engine, when non-nil, names the pipeline the re-solves ride (the
// replay harness injects an engine with latency-counting middleware);
// nil uses the process-wide default.
type FullResolve struct {
	Engine *engine.Engine
}

// Name implements Policy.
func (FullResolve) Name() string { return "full-resolve" }

func (f FullResolve) engine() *engine.Engine {
	if f.Engine != nil {
		return f.Engine
	}
	return engine.Default()
}

// React implements Policy. The re-solve rides the engine pipeline
// (pooled workspace, telemetry, process-wide checks) through the
// state's reusable request/response, so a stable steady state re-solves
// without allocating. The instance is built over the up servers only,
// so failures and recoveries are handled by construction — the solver
// never sees a down server and evacuated threads land wherever
// Algorithm 2 puts them. In the near-impossible event the engine
// rejects the solve (a post-solve check violation), placements are left
// untouched and the simulator's own post-event validation reports it.
func (f FullResolve) React(s *State, ev Event) []int {
	// Drop placements of departed threads first.
	for id := range s.Place {
		if _, ok := s.Threads[id]; !ok {
			delete(s.Place, id)
		}
	}
	in, ids, up, _ := s.instance()
	if len(ids) == 0 || len(up) == 0 {
		return nil
	}
	s.scr.req = engine.Request{Instance: in}
	if err := f.engine().SolveInto(context.Background(), &s.scr.req, &s.scr.resp); err != nil {
		return nil
	}
	a := &s.scr.resp.Assignment
	var migrated []int
	for k, id := range ids {
		old, existed := s.Place[id]
		next := Placement{Server: up[a.Server[k]], Alloc: a.Alloc[k]}
		// The event's own thread does not count as a migration; for
		// Fail/Recover the ID is a server, so every move counts.
		self := id == ev.ID && ev.Kind != Fail && ev.Kind != Recover
		if existed && !self && old.Server != next.Server {
			migrated = append(migrated, id)
		}
		s.Place[id] = next
	}
	return migrated
}

// Incremental only migrates existing threads when a failure forces it:
// arrivals go to the least-loaded up server, departures and drifts
// re-allocate within the affected server, and a server failure
// evacuates its threads to the least-loaded survivors (the only
// migrations this policy ever performs).
type Incremental struct{}

// Name implements Policy.
func (Incremental) Name() string { return "incremental" }

// leastLoadedUp returns the up server with the smallest load in loads,
// or -1 when every server is down.
func (s *State) leastLoadedUp(loads []float64) int {
	best := -1
	for j := 0; j < s.M; j++ {
		if !s.ServerUp(j) {
			continue
		}
		if best < 0 || loads[j] < loads[best] {
			best = j
		}
	}
	return best
}

// React implements Policy.
func (Incremental) React(s *State, ev Event) []int {
	switch ev.Kind {
	case Arrive:
		best := s.leastLoadedUp(s.Loads())
		if best < 0 {
			return nil // no server up; Validate reports the unplaced thread
		}
		s.Place[ev.ID] = Placement{Server: best, Alloc: 0}
		s.reallocServer(best)
	case Depart:
		if p, ok := s.Place[ev.ID]; ok {
			delete(s.Place, ev.ID)
			s.reallocServer(p.Server)
		}
	case Drift:
		if p, ok := s.Place[ev.ID]; ok {
			s.reallocServer(p.Server)
		}
	case Fail:
		return s.evacuate(ev.ID)
	case Recover:
		// Nothing to rebalance: the recovered server starts empty and
		// fills from future arrivals.
	case ArriveBatch:
		s.placeBatch(ev.Batch)
	}
	return nil
}

// placeBatch spreads a cohort of new threads over the up servers:
// each thread (in batch order) lands on the currently least-loaded
// server, charged at its capped demand as the load estimate, then every
// touched server re-allocates once. Placing at alloc 0 without the
// estimate would stack the whole cohort on one server — the estimate is
// what makes a million-thread spin-up come out balanced.
func (s *State) placeBatch(batch []BatchArrival) {
	loads := s.Loads()
	touched := map[int]bool{}
	for _, ba := range batch {
		best := s.leastLoadedUp(loads)
		if best < 0 {
			return // no server up; Validate reports the unplaced threads
		}
		s.Place[ba.ID] = Placement{Server: best, Alloc: 0}
		loads[best] += minFloat(ba.Util.Cap(), s.C)
		touched[best] = true
	}
	order := make([]int, 0, len(touched))
	for j := range touched {
		order = append(order, j)
	}
	sort.Ints(order)
	for _, j := range order {
		s.reallocServer(j)
	}
}

// evacuate moves every thread off the failed server j onto the
// least-loaded surviving servers (balancing by each thread's previous
// allocation as the load estimate), then re-allocates each touched
// server. The moved ids are the forced migrations.
func (s *State) evacuate(j int) []int {
	var moved []int
	for _, id := range s.ids() {
		if s.Place[id].Server == j {
			moved = append(moved, id)
		}
	}
	if len(moved) == 0 {
		return nil
	}
	loads := s.Loads()
	touched := map[int]bool{}
	for _, id := range moved {
		prev := s.Place[id].Alloc
		best := s.leastLoadedUp(loads)
		if best < 0 {
			// Nowhere to go: leave the placement for Validate to flag.
			return nil
		}
		s.Place[id] = Placement{Server: best, Alloc: 0}
		loads[best] += prev
		touched[best] = true
	}
	// Deterministic realloc order.
	order := make([]int, 0, len(touched))
	for t := range touched {
		order = append(order, t)
	}
	sort.Ints(order)
	for _, t := range order {
		s.reallocServer(t)
	}
	return moved
}

// Hybrid runs Incremental, then falls back to a full re-solve whenever
// the incremental state's utility drops below Threshold times the
// super-optimal bound of the active set (the paper's α ≈ 0.828 is the
// natural setting: rebuild when the incremental state is worse than the
// approximation guarantee). Engine, when non-nil, is the pipeline the
// fallback re-solves ride.
type Hybrid struct {
	Threshold float64
	Engine    *engine.Engine
}

// Name implements Policy.
func (h Hybrid) Name() string { return fmt.Sprintf("hybrid(%.2f)", h.Threshold) }

// React implements Policy.
func (h Hybrid) React(s *State, ev Event) []int {
	migrated := (Incremental{}).React(s, ev)
	in, _, up, _ := s.instance()
	if in.N() == 0 || len(up) == 0 {
		return migrated
	}
	bound := core.SuperOptimal(in).Total
	if bound <= 0 || s.TotalUtility() >= h.Threshold*bound {
		return migrated
	}
	return append(migrated, (FullResolve{Engine: h.Engine}).React(s, ev)...)
}

// Result summarizes a simulation.
type Result struct {
	UtilityIntegral float64 // ∫ total utility dt over the horizon
	Migrations      int     // thread moves caused by the policy
	MigrationCost   float64 // Migrations × per-move cost
	Net             float64 // UtilityIntegral − MigrationCost
	FinalThreads    int
}

// EventInfo is the per-event observation delivered to an Options.Hook:
// which timeline entry was just applied, how many threads the policy
// migrated, and how long the policy's React took in wall time (the
// replay harness turns that into solve-latency percentiles; it is NOT
// deterministic and must stay out of any byte-compared report).
type EventInfo struct {
	Index     int
	Event     Event
	Migrated  int
	ReactWall time.Duration
}

// Options parameterize SimulateOpts. The zero value charges no
// migration cost and observes nothing.
type Options struct {
	MoveCost float64
	Horizon  float64
	// Hook, when non-nil, is called after each applied event, its
	// policy reaction and the post-event validation. The hook may read
	// the state (TotalUtility, Threads, Down, Place) but must not
	// mutate it.
	Hook func(info EventInfo, s *State)
}

// Simulate plays the event timeline (sorted by Time) under the policy,
// accruing utility between events and charging moveCost per migration.
// horizon is the end time; events at or after it are ignored.
func Simulate(m int, c float64, events []Event, policy Policy, moveCost, horizon float64) (Result, error) {
	return SimulateOpts(m, c, events, policy, Options{MoveCost: moveCost, Horizon: horizon})
}

// SimulateOpts is Simulate with an observation hook — the entry point
// of the trace-replay harness (internal/replay), which needs per-event
// access to the live state for utility-vs-bound accounting and solve
// latency measurement.
func SimulateOpts(m int, c float64, events []Event, policy Policy, opts Options) (Result, error) {
	s := NewState(m, c)
	var res Result
	now := 0.0
	for i, ev := range events {
		if ev.Time >= opts.Horizon {
			break
		}
		if ev.Time < now {
			return Result{}, fmt.Errorf("online: events out of order at t=%v", ev.Time)
		}
		res.UtilityIntegral += s.TotalUtility() * (ev.Time - now)
		now = ev.Time

		switch ev.Kind {
		case Arrive:
			if ev.Util == nil {
				return Result{}, fmt.Errorf("online: arrival %d without utility", ev.ID)
			}
			if _, exists := s.Threads[ev.ID]; exists {
				return Result{}, fmt.Errorf("online: duplicate arrival %d", ev.ID)
			}
			s.Threads[ev.ID] = ev.Util
		case Depart:
			delete(s.Threads, ev.ID)
		case Drift:
			if _, exists := s.Threads[ev.ID]; !exists {
				continue // drift for a departed thread: ignore
			}
			if ev.Util == nil {
				return Result{}, fmt.Errorf("online: drift %d without utility", ev.ID)
			}
			s.Threads[ev.ID] = ev.Util
		case Fail:
			if ev.ID < 0 || ev.ID >= s.M {
				return Result{}, fmt.Errorf("online: fail of invalid server %d", ev.ID)
			}
			if !s.ServerUp(ev.ID) {
				return Result{}, fmt.Errorf("online: server %d failed while already down", ev.ID)
			}
			s.SetServerDown(ev.ID, true)
		case Recover:
			if ev.ID < 0 || ev.ID >= s.M {
				return Result{}, fmt.Errorf("online: recovery of invalid server %d", ev.ID)
			}
			if s.ServerUp(ev.ID) {
				return Result{}, fmt.Errorf("online: server %d recovered while up", ev.ID)
			}
			s.SetServerDown(ev.ID, false)
		case ArriveBatch:
			if len(ev.Batch) == 0 {
				return Result{}, fmt.Errorf("online: empty arrival batch at t=%v", ev.Time)
			}
			for _, ba := range ev.Batch {
				if ba.Util == nil {
					return Result{}, fmt.Errorf("online: batch arrival %d without utility", ba.ID)
				}
				if _, exists := s.Threads[ba.ID]; exists {
					return Result{}, fmt.Errorf("online: duplicate arrival %d", ba.ID)
				}
				s.Threads[ba.ID] = ba.Util
			}
		default:
			return Result{}, fmt.Errorf("online: unknown event kind %v", ev.Kind)
		}
		start := time.Now()
		migrated := policy.React(s, ev)
		wall := time.Since(start)
		res.Migrations += len(migrated)
		if err := s.Validate(1e-6); err != nil {
			return Result{}, fmt.Errorf("online: after t=%v: %w", ev.Time, err)
		}
		if check.Enabled() {
			if err := s.Check(check.DefaultEps); err != nil {
				return Result{}, fmt.Errorf("online: after t=%v: %w", ev.Time, err)
			}
		}
		if opts.Hook != nil {
			opts.Hook(EventInfo{Index: i, Event: ev, Migrated: len(migrated), ReactWall: wall}, s)
		}
	}
	res.UtilityIntegral += s.TotalUtility() * (opts.Horizon - now)
	res.MigrationCost = float64(res.Migrations) * opts.MoveCost
	res.Net = res.UtilityIntegral - res.MigrationCost
	res.FinalThreads = len(s.Threads)
	return res, nil
}
