package alloc_test

// Differential tests for the pruned water-filling fast path: ConcaveInto
// must be byte-identical with Concave (same code, shared scratch
// semantics), and both must agree with the retained unpruned reference
// ConcaveRef up to bisection tolerance, across the six figure workload
// distributions of the paper's evaluation.

import (
	"math"
	"testing"

	"aa/internal/alloc"
	"aa/internal/check"
	"aa/internal/gen"
	"aa/internal/rng"
	"aa/internal/utility"
)

// corpusThreads draws a thread set from every figure workload crossed
// with a few sizes, handing each (workload, n, trial) to fn.
func corpusThreads(t *testing.T, fn func(label string, fs []utility.Func, c float64)) {
	t.Helper()
	const c = 100.0
	r := rng.New(20260806)
	for _, w := range check.FigureWorkloads() {
		for _, n := range []int{1, 2, 7, 40} {
			for trial := 0; trial < 3; trial++ {
				fs := make([]utility.Func, n)
				for i := range fs {
					f, err := gen.Thread(w.Dist, c, r)
					if err != nil {
						t.Fatalf("%s: gen.Thread: %v", w.Name, err)
					}
					fs[i] = f
				}
				fn(w.Name, fs, c)
			}
		}
	}
}

// budgets spans the regimes the allocator distinguishes: cap-starved,
// tight, generous, and beyond Σ caps (the trivial path).
func budgets(fs []utility.Func) []float64 {
	capSum := 0.0
	for _, f := range fs {
		capSum += f.Cap()
	}
	return []float64{1e-6 * capSum, 0.25 * capSum, 0.8 * capSum, capSum, 1.5 * capSum}
}

// TestConcaveIntoMatchesConcave pins the tentpole's safety requirement:
// reusing a dirty destination slice across solves yields bit-for-bit the
// allocation a fresh Concave call produces.
func TestConcaveIntoMatchesConcave(t *testing.T) {
	dst := []float64{} // grown on first use, then reused dirty
	corpusThreads(t, func(label string, fs []utility.Func, c float64) {
		for _, budget := range budgets(fs) {
			want := alloc.Concave(fs, budget)
			got := alloc.ConcaveInto(dst, fs, budget)
			dst = got.Alloc // keep the dirty buffer for the next solve
			if got.Total != want.Total || got.Lambda != want.Lambda ||
				got.Iterations != want.Iterations {
				t.Fatalf("%s n=%d budget=%g: ConcaveInto result (%v,%v,%d) != Concave (%v,%v,%d)",
					label, len(fs), budget, got.Total, got.Lambda, got.Iterations,
					want.Total, want.Lambda, want.Iterations)
			}
			for i := range want.Alloc {
				if got.Alloc[i] != want.Alloc[i] {
					t.Fatalf("%s n=%d budget=%g thread %d: ConcaveInto %v != Concave %v",
						label, len(fs), budget, i, got.Alloc[i], want.Alloc[i])
				}
			}
		}
	})
}

// TestConcaveIntoGrowsShortDst covers the resize rule: a dst with
// insufficient capacity is replaced, one with spare capacity is reused in
// place and truncated to n.
func TestConcaveIntoGrowsShortDst(t *testing.T) {
	fs := []utility.Func{
		utility.Linear{Slope: 2, C: 10},
		utility.Log{Scale: 3, Shift: 1, C: 10},
		utility.Power{Scale: 1, Beta: 0.5, C: 10},
	}
	short := make([]float64, 1)
	res := alloc.ConcaveInto(short, fs, 12)
	if len(res.Alloc) != len(fs) {
		t.Fatalf("grown dst has length %d, want %d", len(res.Alloc), len(fs))
	}
	long := make([]float64, 8)
	for i := range long {
		long[i] = math.NaN() // poison: stale entries must all be overwritten
	}
	res2 := alloc.ConcaveInto(long, fs, 12)
	if len(res2.Alloc) != len(fs) {
		t.Fatalf("truncated dst has length %d, want %d", len(res2.Alloc), len(fs))
	}
	if &long[0] != &res2.Alloc[0] {
		t.Fatal("dst with spare capacity was not reused in place")
	}
	for i := range res2.Alloc {
		if res.Alloc[i] != res2.Alloc[i] {
			t.Fatalf("thread %d: grown %v != reused %v", i, res.Alloc[i], res2.Alloc[i])
		}
	}
}

// TestConcaveMatchesRef checks the pruned bisection against the unpruned
// reference. The two walk nearly identical λ brackets (settled threads
// change only the floating-point summation order), so totals must agree
// essentially exactly and allocations to well under the budget scale.
func TestConcaveMatchesRef(t *testing.T) {
	corpusThreads(t, func(label string, fs []utility.Func, c float64) {
		for _, budget := range budgets(fs) {
			got := alloc.Concave(fs, budget)
			want := alloc.ConcaveRef(fs, budget)
			if math.Abs(got.Total-want.Total) > 1e-7*(1+math.Abs(want.Total)) {
				t.Fatalf("%s n=%d budget=%g: pruned total %v, reference total %v",
					label, len(fs), budget, got.Total, want.Total)
			}
			sumGot, sumWant := 0.0, 0.0
			for i := range want.Alloc {
				sumGot += got.Alloc[i]
				sumWant += want.Alloc[i]
				if math.Abs(got.Alloc[i]-want.Alloc[i]) > 1e-6*(1+budget) {
					t.Fatalf("%s n=%d budget=%g thread %d: pruned %v, reference %v",
						label, len(fs), budget, i, got.Alloc[i], want.Alloc[i])
				}
			}
			if math.Abs(sumGot-sumWant) > 1e-9*(1+budget) {
				t.Fatalf("%s n=%d budget=%g: pruned spends %v, reference spends %v",
					label, len(fs), budget, sumGot, sumWant)
			}
			if err := check.Allocation(fs, got.Alloc, budget, check.DefaultEps); err != nil {
				t.Fatalf("%s n=%d budget=%g: pruned allocation infeasible: %v",
					label, len(fs), budget, err)
			}
		}
	})
}

// TestConcavePrunedPlateauRedistribution exercises the plateau path with
// settled threads present: piecewise-linear utilities whose derivative is
// constant over long stretches, mixed with a steep thread that settles at
// cap early and a hopeless one that settles at zero.
func TestConcavePrunedPlateauRedistribution(t *testing.T) {
	pl := func(xs, ys []float64) utility.Func {
		f, err := utility.NewPiecewiseLinear(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	fs := []utility.Func{
		utility.Linear{Slope: 100, C: 2}, // settles at cap on the first feasible probe
		pl([]float64{0, 5, 10}, []float64{0, 10, 15}),
		pl([]float64{0, 4, 10}, []float64{0, 8, 12.8}),
		utility.Linear{Slope: 1e-9, C: 10}, // priced out immediately
	}
	for _, budget := range []float64{3, 7, 12, 20, 31} {
		got := alloc.Concave(fs, budget)
		want := alloc.ConcaveRef(fs, budget)
		for i := range want.Alloc {
			if math.Abs(got.Alloc[i]-want.Alloc[i]) > 1e-6*(1+budget) {
				t.Fatalf("budget=%g thread %d: pruned %v, reference %v",
					budget, i, got.Alloc[i], want.Alloc[i])
			}
		}
		if math.Abs(got.Total-want.Total) > 1e-9*(1+want.Total) {
			t.Fatalf("budget=%g: pruned total %v, reference total %v", budget, got.Total, want.Total)
		}
	}
}
