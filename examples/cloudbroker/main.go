// Cloud-broker example — the paper's third motivating application.
//
// A provider sells VMs on identical physical machines. Customers express
// willingness to pay as concave curves. The example contrasts:
//
//  1. fixed instance tiers (t-shirt sizes) placed first-fit — industry
//     practice and the strawman of the paper's introduction, and
//  2. AA (Algorithm 2), which sizes every VM individually while placing
//     it, extracting revenue the tiers leave on the table.
//
// It closes with the introduction's analytic series: with payment curves
// x^β, fixed-size requests are a factor ~n^(1−β) from optimal.
package main

import (
	"fmt"

	"aa/internal/cloud"
	"aa/internal/rng"
)

func main() {
	r := rng.New(11)
	fleet := cloud.RandomFleet(4 /* machines */, 64 /* vCPUs */, 48 /* tenants */, 0.3, 0.9, r)

	tiers := cloud.DefaultTiers(fleet.Capacity)
	choices := cloud.ChooseTiers(fleet, tiers)
	tierRev, tierAssign := cloud.TierRevenue(fleet, tiers, choices)

	aaRev, aaAssign, err := cloud.SolveRevenue(fleet)
	if err != nil {
		panic(err)
	}

	counts := map[string]int{}
	for _, ch := range choices {
		if ch.Tier < 0 {
			counts["(opt-out)"]++
		} else {
			counts[tiers[ch.Tier].Name]++
		}
	}
	fmt.Println("tier demand under catalog pricing:")
	for _, tier := range tiers {
		fmt.Printf("  %-8s (%4.1f vCPU): %d tenants\n", tier.Name, tier.Size, counts[tier.Name])
	}
	fmt.Printf("  %-8s              : %d tenants\n", "(opt-out)", counts["(opt-out)"])

	placedTier, placedAA := 0, 0
	for i := range fleet.Customers {
		if tierAssign.Alloc[i] > 0 {
			placedTier++
		}
		if aaAssign.Alloc[i] > 0 {
			placedAA++
		}
	}

	fmt.Printf("\nrevenue per hour:\n")
	fmt.Printf("  fixed tiers, first-fit:  $%.2f (%d tenants placed)\n", tierRev, placedTier)
	fmt.Printf("  AA joint sizing:         $%.2f (%d tenants with resources)\n", aaRev, placedAA)
	fmt.Printf("  uplift:                  %.1f%%\n", 100*(aaRev/tierRev-1))

	// The introduction's asymptotic argument, concretely.
	fmt.Printf("\nintro example: one machine (C=1000), f(x)=x^0.5, fixed requests z=100\n")
	fmt.Printf("%6s %14s %14s %8s\n", "n", "fixed-request", "optimal", "ratio")
	for _, pt := range cloud.IntroGapSeries(1000, 100, 0.5, []int{10, 20, 40, 80, 160, 320}) {
		fmt.Printf("%6d %14.2f %14.2f %8.2f\n", pt.N, pt.FixedTotal, pt.OptTotal, pt.Ratio)
	}
	fmt.Println("\nfixed-request utility is flat in n; the optimum grows as n^0.5 —")
	fmt.Println("the gap is unbounded, which is why AA sizes VMs jointly.")
}
