package alloc

import (
	"math"
	"testing"

	"aa/internal/utility"
)

// FuzzConcaveFeasibleAndDominant builds a small instance of mixed
// concave families from fuzzed parameters and asserts the λ-bisection
// allocator (1) stays feasible and (2) never loses to the equal split.
func FuzzConcaveFeasibleAndDominant(f *testing.F) {
	f.Add(1.0, 10.0, 2.0, 20.0, 0.5, 100.0)
	f.Add(0.1, 1.0, 0.1, 1.0, 0.9, 1.0)
	f.Add(5.0, 50.0, 3.0, 5.0, 0.3, 500.0)
	f.Fuzz(func(t *testing.T, s1, k1, s2, k2, beta, budget float64) {
		ok := func(v float64) bool {
			return !math.IsNaN(v) && !math.IsInf(v, 0)
		}
		if !ok(s1) || !ok(k1) || !ok(s2) || !ok(k2) || !ok(beta) || !ok(budget) {
			t.Skip()
		}
		s1, k1 = math.Abs(s1), math.Abs(k1)
		s2, k2 = math.Abs(s2), math.Abs(k2)
		budget = math.Abs(budget)
		if s1 > 1e6 || s2 > 1e6 || k1 > 1e6 || k2 > 1e6 || budget > 1e6 {
			t.Skip()
		}
		if k1 < 1e-6 || k2 < 1e-6 || budget < 1e-6 {
			t.Skip()
		}
		beta = math.Mod(math.Abs(beta), 1)
		if beta < 0.05 {
			beta = 0.05
		}
		const c = 100.0
		fs := []utility.Func{
			utility.Log{Scale: s1, Shift: k1, C: c},
			utility.SatExp{Scale: s2, K: k2, C: c},
			utility.Power{Scale: s1 + 0.1, Beta: beta, C: c},
		}
		res := Concave(fs, budget)
		sum := 0.0
		for i, a := range res.Alloc {
			if a < -1e-9 || a > fs[i].Cap()+1e-9 || math.IsNaN(a) {
				t.Fatalf("allocation %d = %v out of range", i, a)
			}
			sum += a
		}
		if sum > budget*(1+1e-9)+1e-9 {
			t.Fatalf("sum %v > budget %v", sum, budget)
		}
		eq := EqualSplit(fs, budget)
		if res.Total < eq.Total*(1-1e-6)-1e-9 {
			t.Fatalf("Concave %v lost to equal split %v", res.Total, eq.Total)
		}
	})
}
