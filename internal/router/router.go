// Package router is the relay tier's node-set manager: it tracks a
// configured set of aaserve nodes, probes their readiness (/readyz) and
// load (the aa_pool_queue_depth gauge scraped from /metrics/history),
// and picks a node per request under a pluggable strategy — round-robin,
// least-loaded, or weighted failover. The router holds state, the relay
// holds the HTTP plumbing: forwarding, retries and backpressure mapping
// live in cmd/aarelay, which reports transport failures back here
// (ObserveFailure) so routing reacts faster than the next probe sweep.
package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aa/internal/telemetry"
)

// Strategy selects how Pick orders the ready nodes.
type Strategy string

// The routing strategies accepted by ParseStrategy (and the relay's
// -strategy flag).
const (
	// RoundRobin rotates through the ready nodes in configuration
	// order, skipping draining/down ones.
	RoundRobin Strategy = "round-robin"
	// LeastLoaded picks the ready node with the smallest load signal:
	// the last-probed aa_pool_queue_depth plus the relay's own count of
	// requests currently in flight to that node (the in-flight term
	// reacts instantly; the probed term folds in load from other
	// clients between sweeps).
	LeastLoaded Strategy = "least-loaded"
	// WeightedFailover always picks the highest-weight ready node —
	// a primary/standby arrangement where standbys take traffic only
	// while every heavier node is draining or down (health-probe
	// triggered failover, not load spreading).
	WeightedFailover Strategy = "weighted-failover"
)

// ParseStrategy normalizes a strategy name; underscores work as word
// separators too, so "least_loaded" and "least-loaded" both parse.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), "_", "-")) {
	case RoundRobin, "rr":
		return RoundRobin, nil
	case LeastLoaded, "ll":
		return LeastLoaded, nil
	case WeightedFailover, "wf", "weighted", "failover":
		return WeightedFailover, nil
	default:
		return "", fmt.Errorf("router: unknown strategy %q (want %q, %q or %q)",
			s, RoundRobin, LeastLoaded, WeightedFailover)
	}
}

// State is a node's routing eligibility.
type State string

// Node states. Only Ready nodes receive traffic.
const (
	// Ready nodes answer /readyz with 200 and take traffic.
	Ready State = "ready"
	// Draining nodes answered /readyz with 503: alive, finishing
	// in-flight work, taking nothing new. Probing continues (a
	// draining node's listener closes soon, moving it to Down).
	Draining State = "draining"
	// Down nodes failed their last probe or a forward at the transport
	// level. Probing continues; a succeeding /readyz restores Ready.
	Down State = "down"
)

// Node is one configured aaserve target.
type Node struct {
	// Name identifies the node in logs, metrics and Snapshot; defaults
	// to Addr when empty.
	Name string
	// Addr is the node's host:port.
	Addr string
	// Weight orders WeightedFailover preference (higher first; ties
	// break on configuration order). 0 means 1.
	Weight float64
}

// ErrNoNodes is returned by Pick when no ready node remains.
var ErrNoNodes = errors.New("router: no ready nodes")

var (
	metricPicks    = telemetry.Default.Counter("aa_router_picks_total")
	metricFailures = telemetry.Default.Counter("aa_router_node_failures_total")
	metricProbes   = telemetry.Default.Counter("aa_router_probes_total")
)

// nodeInfo is a node plus its observed state, guarded by Router.mu.
type nodeInfo struct {
	Node
	state     State
	depth     float64 // last-probed aa_pool_queue_depth
	inflight  int     // relay requests currently forwarded here
	fails     uint64  // consecutive probe/transport failures
	lastProbe time.Time
}

// Router tracks the node set. Safe for concurrent use.
type Router struct {
	strategy Strategy

	mu    sync.Mutex
	nodes []*nodeInfo
	rr    int // next round-robin start offset

	client   *http.Client
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	probing  atomic.Bool
}

// New builds a router over nodes. Nodes start Ready — the first probe
// sweep corrects that within one interval, and starting Down would make
// a cold relay refuse traffic until the sweep even when every node is
// fine.
func New(strategy Strategy, nodes []Node) (*Router, error) {
	if len(nodes) == 0 {
		return nil, errors.New("router: no nodes configured")
	}
	r := &Router{
		strategy: strategy,
		client:   &http.Client{Timeout: 2 * time.Second},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n.Addr == "" {
			return nil, errors.New("router: node with empty address")
		}
		if seen[n.Addr] {
			return nil, fmt.Errorf("router: duplicate node address %q", n.Addr)
		}
		seen[n.Addr] = true
		if n.Name == "" {
			n.Name = n.Addr
		}
		if n.Weight <= 0 {
			n.Weight = 1
		}
		r.nodes = append(r.nodes, &nodeInfo{Node: n, state: Ready})
	}
	return r, nil
}

// Pick selects a node for one request under the router's strategy,
// counting it in flight until the matching Done call. exclude lists
// addresses already tried for this request (the relay's failover loop);
// nil means none.
func (r *Router) Pick(exclude map[string]bool) (Node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *nodeInfo
	switch r.strategy {
	case LeastLoaded:
		for _, n := range r.nodes {
			if n.state != Ready || exclude[n.Addr] {
				continue
			}
			if best == nil || n.depth+float64(n.inflight) < best.depth+float64(best.inflight) {
				best = n
			}
		}
	case WeightedFailover:
		for _, n := range r.nodes {
			if n.state != Ready || exclude[n.Addr] {
				continue
			}
			if best == nil || n.Weight > best.Weight {
				best = n
			}
		}
	default: // RoundRobin
		for i := 0; i < len(r.nodes); i++ {
			n := r.nodes[(r.rr+i)%len(r.nodes)]
			if n.state != Ready || exclude[n.Addr] {
				continue
			}
			r.rr = (r.rr + i + 1) % len(r.nodes)
			best = n
			break
		}
	}
	if best == nil {
		return Node{}, ErrNoNodes
	}
	best.inflight++
	metricPicks.Inc()
	return best.Node, nil
}

// Done releases the in-flight slot Pick counted against addr.
func (r *Router) Done(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := r.byAddr(addr); n != nil && n.inflight > 0 {
		n.inflight--
	}
}

// ObserveFailure marks addr Down after a transport-level forward
// failure (connection refused/reset, timeout). Transport failures are
// unambiguous — the node is unreachable now — so routing reacts
// immediately instead of waiting for the next probe sweep; the prober
// restores Ready as soon as /readyz answers 200 again. HTTP-level
// errors (429, 503) are NOT transport failures and must not come here:
// the relay handles those as backpressure/drain signals per request.
func (r *Router) ObserveFailure(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := r.byAddr(addr); n != nil {
		n.state = Down
		n.fails++
		metricFailures.Inc()
	}
}

// byAddr finds a node; caller holds r.mu.
func (r *Router) byAddr(addr string) *nodeInfo {
	for _, n := range r.nodes {
		if n.Addr == addr {
			return n
		}
	}
	return nil
}

// NodeStatus is one node's row in Snapshot (and the relay's /nodes).
type NodeStatus struct {
	Name      string    `json:"name"`
	Addr      string    `json:"addr"`
	Weight    float64   `json:"weight"`
	State     State     `json:"state"`
	Depth     float64   `json:"queueDepth"`
	InFlight  int       `json:"inFlight"`
	Failures  uint64    `json:"failures"`
	LastProbe time.Time `json:"lastProbe"`
}

// Snapshot reports every node's current status in configuration order.
func (r *Router) Snapshot() []NodeStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeStatus, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = NodeStatus{
			Name: n.Name, Addr: n.Addr, Weight: n.Weight,
			State: n.state, Depth: n.depth, InFlight: n.inflight,
			Failures: n.fails, LastProbe: n.lastProbe,
		}
	}
	return out
}

// Strategy reports the configured strategy.
func (r *Router) Strategy() Strategy { return r.strategy }

// setProbe records one probe result; zero depth with ok=false keeps the
// previous depth (an unreachable node's stale depth is irrelevant — it
// is not Ready).
func (r *Router) setProbe(addr string, state State, depth float64, hasDepth bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.byAddr(addr)
	if n == nil {
		return
	}
	n.state = state
	n.lastProbe = time.Now()
	if hasDepth {
		n.depth = depth
	}
	if state == Ready {
		n.fails = 0
	} else {
		n.fails++
	}
}

// historyTail mirrors the fields the prober reads from a node's
// GET /metrics/history?last=1 response.
type historyTail struct {
	Snapshots []struct {
		Metrics map[string]struct {
			Value float64 `json:"value"`
		} `json:"metrics"`
	} `json:"snapshots"`
}

// ProbeNow sweeps every node synchronously: GET /readyz decides the
// state (200 → Ready, other status → Draining, transport error → Down),
// and for reachable nodes GET /metrics/history?last=1 refreshes the
// queue-depth load signal (404 — history disabled — reads as depth 0;
// the signal degrades to in-flight-only rather than failing the node).
func (r *Router) ProbeNow() {
	r.mu.Lock()
	addrs := make([]string, len(r.nodes))
	for i, n := range r.nodes {
		addrs[i] = n.Addr
	}
	r.mu.Unlock()

	var wg sync.WaitGroup
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			r.probeOne(addr)
		}(addr)
	}
	wg.Wait()
}

func (r *Router) probeOne(addr string) {
	metricProbes.Inc()
	resp, err := r.client.Get("http://" + addr + "/readyz")
	if err != nil {
		r.setProbe(addr, Down, 0, false)
		return
	}
	resp.Body.Close()
	state := Ready
	if resp.StatusCode != http.StatusOK {
		state = Draining
	}
	depth, hasDepth := 0.0, false
	if hresp, err := r.client.Get("http://" + addr + "/metrics/history?last=1"); err == nil {
		if hresp.StatusCode == http.StatusOK {
			var tail historyTail
			if json.NewDecoder(hresp.Body).Decode(&tail) == nil && len(tail.Snapshots) > 0 {
				depth = tail.Snapshots[len(tail.Snapshots)-1].Metrics["aa_pool_queue_depth"].Value
				hasDepth = true
			}
		} else if hresp.StatusCode == http.StatusNotFound {
			hasDepth = true // history disabled: a real answer, depth 0
		}
		hresp.Body.Close()
	}
	r.setProbe(addr, state, depth, hasDepth)
}

// StartProber probes every interval until Stop. interval <= 0 means 1s.
func (r *Router) StartProber(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	r.probing.Store(true)
	go func() {
		defer close(r.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.ProbeNow()
			}
		}
	}()
}

// Stop halts the prober started by StartProber and waits for it.
// Safe to call without StartProber and more than once.
func (r *Router) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	if r.probing.Load() {
		<-r.done
	}
}

// ParseNodes parses the relay's -nodes flag: a comma-separated list of
// host:port targets, each optionally prefixed "name=" and suffixed
// "*weight" — e.g. "n1=10.0.0.1:8080*2,10.0.0.2:8080".
func ParseNodes(s string) ([]Node, error) {
	var nodes []Node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n Node
		if name, rest, ok := strings.Cut(part, "="); ok {
			n.Name, part = strings.TrimSpace(name), strings.TrimSpace(rest)
		}
		if addr, w, ok := strings.Cut(part, "*"); ok {
			var weight float64
			if _, err := fmt.Sscanf(strings.TrimSpace(w), "%g", &weight); err != nil || weight <= 0 {
				return nil, fmt.Errorf("router: bad weight %q in node %q", w, part)
			}
			n.Weight, part = weight, strings.TrimSpace(addr)
		}
		n.Addr = part
		if n.Addr == "" {
			return nil, fmt.Errorf("router: node %q has no address", part)
		}
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, errors.New("router: empty node list")
	}
	return nodes, nil
}
