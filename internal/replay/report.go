// Report types and writers. The JSON encoding is byte-deterministic
// for a fixed scenario + seed: struct field order is fixed, every float
// is accumulated in deterministic order, and the only nondeterministic
// section — wall-clock measurements — is confined to Report.Wall, which
// Canonical strips for the run-twice byte comparison.
package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ScenarioInfo echoes the replayed scenario into the report header.
type ScenarioInfo struct {
	Name      string  `json:"name"`
	Policy    string  `json:"policy"`
	Solver    string  `json:"solver"` // "engine" or "http"
	Servers   int     `json:"servers"`
	Capacity  float64 `json:"capacity"`
	Horizon   float64 `json:"horizon"`
	SolveCost float64 `json:"solveCost"`
}

// UtilityStats is the utility-vs-bound accounting over the horizon:
// ∫F dt, ∫F̂ dt, their ratio, and the end-of-horizon instantaneous
// values.
type UtilityStats struct {
	Integral      float64 `json:"integral"`
	BoundIntegral float64 `json:"boundIntegral"`
	Ratio         float64 `json:"ratio"`
	Final         float64 `json:"final"`
	FinalBound    float64 `json:"finalBound"`
	FinalThreads  int     `json:"finalThreads"`
}

// SolveStats summarizes the re-solve traffic in virtual time.
type SolveStats struct {
	Resolves   int     `json:"resolves"`
	Failed     int     `json:"failed"` // remote solves that exhausted their retries
	Migrations int     `json:"migrations"`
	VirtualP50 float64 `json:"virtualP50"`
	VirtualP99 float64 `json:"virtualP99"`
	VirtualMax float64 `json:"virtualMax"`
	QueuePeak  int     `json:"queuePeak"`
}

// CacheStats is the solve-result cache section, present when the run
// installed a cache (RunOptions.Cache, -cache on aareplay). With a
// TTL-free cache the counters are a pure function of the trace —
// solves happen in deterministic event order — so Canonical keeps this
// section and the determinism gate covers it.
type CacheStats struct {
	Mode       string  `json:"mode"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	WarmStarts uint64  `json:"warmStarts"`
	Stores     uint64  `json:"stores"`
	Evictions  uint64  `json:"evictions"`
	Bypasses   uint64  `json:"bypasses"`
	HitRate    float64 `json:"hitRate"`  // hits / (hits+misses)
	WarmRate   float64 `json:"warmRate"` // warmStarts / (hits+misses)
}

// WallStats is the wall-clock side of the run. It is measured, not
// modeled, and therefore NOT deterministic — Canonical strips it.
type WallStats struct {
	TotalSec     float64 `json:"totalSec"`
	SolveP50Sec  float64 `json:"solveP50Sec"`
	SolveP99Sec  float64 `json:"solveP99Sec"`
	EventsPerSec float64 `json:"eventsPerSec"`
}

// Sample is one trajectory point: the carried system state at virtual
// time T.
type Sample struct {
	T          float64 `json:"t"`
	Threads    int     `json:"threads"`
	UpServers  int     `json:"upServers"`
	QueueDepth int     `json:"queueDepth"`
	Resolves   int     `json:"resolves"` // cumulative
	Utility    float64 `json:"utility"`
	Bound      float64 `json:"bound"`
}

// Report is one scenario's replay result.
type Report struct {
	Scenario   ScenarioInfo `json:"scenario"`
	Seed       uint64       `json:"seed"`
	Trace      TraceStats   `json:"trace"`
	Utility    UtilityStats `json:"utility"`
	Solves     SolveStats   `json:"solves"`
	Cache      *CacheStats  `json:"cache,omitempty"`
	Wall       *WallStats   `json:"wall,omitempty"`
	Trajectory []Sample     `json:"trajectory"`
}

// Canonical returns a copy with every nondeterministic field removed —
// the form the determinism gate byte-compares.
func (r *Report) Canonical() *Report {
	c := *r
	c.Wall = nil
	return &c
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes the trajectory as CSV (one row per sample), the form
// plotting scripts consume.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "t,threads,up_servers,queue_depth,resolves,utility,bound\n"); err != nil {
		return err
	}
	for _, s := range r.Trajectory {
		row := fmt.Sprintf("%s,%d,%d,%d,%d,%s,%s\n",
			formatFloat(s.T), s.Threads, s.UpServers, s.QueueDepth, s.Resolves,
			formatFloat(s.Utility), formatFloat(s.Bound))
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float the way encoding/json does (shortest
// round-trip form), keeping CSV and JSON representations consistent
// and byte-deterministic.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Summary returns the one-line stderr summary of a run.
func (r *Report) Summary() string {
	return fmt.Sprintf("scenario=%s policy=%s seed=%d events=%d resolves=%d migrations=%d ratio=%.4f p99(virtual)=%.3fs queue-peak=%d",
		r.Scenario.Name, r.Scenario.Policy, r.Seed, r.Trace.Events,
		r.Solves.Resolves, r.Solves.Migrations, r.Utility.Ratio,
		r.Solves.VirtualP99, r.Solves.QueuePeak)
}
