// Cache partition example — the paper's first motivating application.
//
// Eight threads with different memory behaviours must be placed on a
// two-socket machine. Each socket has a 16-way shared last-level cache,
// and way partitioning divides a socket's ways among its threads. The
// pipeline is:
//
//  1. profile each thread alone at every way count (miss-rate curve),
//  2. turn each curve into a concave utility (throughput vs ways),
//  3. jointly assign threads to sockets and partition ways (Algorithm 2),
//  4. co-run the partitioned caches and compare the measured aggregate
//     throughput against naive operating practice (round robin + equal
//     partitions, i.e. the UU heuristic).
package main

import (
	"fmt"

	"aa/internal/cachesim"
	"aa/internal/core"
	"aa/internal/rng"
)

func main() {
	cfg := cachesim.Config{Sets: 64, Ways: 16, LineSize: 64}
	const sockets = 2
	r := rng.New(2024)

	// A mixed bag of thread behaviours, labelled for the report.
	gens := []cachesim.TraceGen{
		cachesim.WorkingSet{Lines: 256, LineSize: 64, Base: 0 << 32},         // fits with ~4 ways
		cachesim.WorkingSet{Lines: 900, LineSize: 64, Base: 1 << 32},         // cache hungry
		cachesim.ZipfReuse{Lines: 2000, S: 1.3, LineSize: 64, Base: 2 << 32}, // hot head
		cachesim.Stream{LineSize: 64, Base: 3 << 32},                         // hopeless streamer
		cachesim.SequentialLoop{Lines: 640, LineSize: 64, Base: 4 << 32},     // all-or-nothing loop
		cachesim.WorkingSet{Lines: 128, LineSize: 64, Base: 5 << 32},         // small and happy
		cachesim.ZipfReuse{Lines: 1000, S: 0.8, LineSize: 64, Base: 6 << 32}, // flat zipf
		cachesim.Mixture{ // phased: hot set + streaming traffic
			A: cachesim.WorkingSet{Lines: 200, LineSize: 64, Base: 7 << 32},
			B: cachesim.Stream{LineSize: 64, Base: 8 << 32},
			P: 0.6,
		},
	}
	workloads := cachesim.GenerateWorkloads(gens, 40000, cachesim.DefaultModel, r)

	fmt.Println("profiling miss-rate curves (one run per thread per way count)...")
	inst, profiles, err := cachesim.BuildInstance(cfg, sockets, workloads)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-24s %8s %8s %8s\n", "thread", "hr@4way", "hr@8way", "hr@16way")
	for i, p := range profiles {
		fmt.Printf("%-24s %8.3f %8.3f %8.3f\n",
			gens[i].Name(), p.HitRate[4], p.HitRate[8], p.HitRate[16])
	}

	// Joint assignment + allocation with the paper's Algorithm 2 (via
	// the engine pipeline), then an exact per-socket integer refinement
	// on the measured curves.
	sol, err := cachesim.Solve(inst)
	if err != nil {
		panic(err)
	}
	refined := cachesim.OptimizeWays(cfg, sockets, workloads, profiles, sol)
	aa, err := cachesim.CoRunWays(cfg, sockets, workloads, sol, refined)
	if err != nil {
		panic(err)
	}

	// Operating practice baseline: round robin across sockets, equal ways.
	uu := core.AssignUU(inst)
	base, err := cachesim.CoRun(cfg, sockets, workloads, uu)
	if err != nil {
		panic(err)
	}

	// No-partitioning baseline: same round-robin placement, but threads
	// share each socket's cache and evict each other freely.
	shared, err := cachesim.SharedCoRun(cfg, sockets, workloads, uu.Server)
	if err != nil {
		panic(err)
	}

	fmt.Printf("\n%-24s %14s %20s\n", "thread", "AA socket/ways", "baseline socket/ways")
	for i := range gens {
		fmt.Printf("%-24s %8d /%3d %14d /%3d\n",
			gens[i].Name(), sol.Server[i], aa.Ways[i], uu.Server[i], base.Ways[i])
	}

	fmt.Printf("\naggregate throughput (accesses/cycle, model: 1-cycle hit, +40 miss):\n")
	fmt.Printf("  AA (Algorithm 2):        %.4f\n", aa.Total)
	fmt.Printf("  round robin + equal:     %.4f\n", base.Total)
	fmt.Printf("  shared LRU (no parts):   %.4f\n", shared.Total)
	fmt.Printf("  improvement over equal:  %.1f%%\n", 100*(aa.Total/base.Total-1))
	fmt.Printf("  improvement over shared: %.1f%%\n", 100*(aa.Total/shared.Total-1))
	fmt.Printf("  model prediction for AA: %.4f (measured %.4f)\n",
		cachesim.PredictedTotal(inst, aa.Ways), aa.Total)
}
