package cache

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"

	"aa/internal/core"
)

// HashKey keys the thread-hash mixer. The zero key selects the original
// unkeyed hash byte-for-byte (mix64(0) == 0, so zero-key seeds collapse
// to the unkeyed constants), which is what keeps ModeMemory fingerprints
// byte-compatible across this change. A non-zero key perturbs both lane
// seeds and both finalizer lanes, so an attacker who can engineer
// collisions against the published unkeyed constants learns nothing
// about a keyed deployment — the property the shared relay tier needs
// before fingerprints cross trust boundaries.
type HashKey [4]uint64

// IsZero reports whether k is the zero key (the unkeyed hash).
func (k HashKey) IsZero() bool { return k == HashKey{} }

// KeyFromString derives a HashKey from a shared secret (the relay
// config's -cache-key). The empty string maps to the zero key — "no
// secret configured" and "unkeyed hash" are deliberately the same state.
func KeyFromString(secret string) HashKey {
	if secret == "" {
		return HashKey{}
	}
	sum := sha256.Sum256([]byte(secret))
	var k HashKey
	for i := range k {
		k[i] = binary.LittleEndian.Uint64(sum[8*i:])
	}
	if k.IsZero() {
		// A non-empty secret must key the hash; a four-lane zero digest
		// is beyond astronomically unlikely, but the contract is cheap
		// to keep absolute.
		k[0] = 1
	}
	return k
}

// RandomKey draws a fresh per-process key from crypto/rand — the
// default for ModeShared when no cluster key was configured: the cache
// is then safe against engineered collisions but private to this
// process (two relays only share fingerprints when given the same
// -cache-key).
func RandomKey() HashKey {
	var b [32]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand does not fail on supported platforms; a broken
		// entropy source is not something to limp past silently.
		panic("cache: crypto/rand failed: " + err.Error())
	}
	var k HashKey
	for i := range k {
		k[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	if k.IsZero() {
		k[0] = 1
	}
	return k
}

// CanonicalizeKeyed is Canonicalize with a keyed thread-hash mixer. The
// zero key reproduces Canonicalize exactly (same hashes, same
// fingerprints); any other key yields a disjoint fingerprint space,
// marked with its own scheme version so keyed and unkeyed entries can
// never alias even if a key were chosen adversarially.
func CanonicalizeKeyed(in *core.Instance, key HashKey) (*Canonical, error) {
	c, err := canonicalize(in, &key)
	if err != nil {
		return nil, err
	}
	c.keyed = !key.IsZero()
	return c, nil
}
