package cliutil

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aa/internal/check"
	"aa/internal/telemetry"
)

func TestParseHelpPrintsSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("aathing", flag.ContinueOnError)
	var c Common
	c.AddFlags(fs)
	var stderr bytes.Buffer
	err := Parse(fs, []string{"-h"}, &stderr)
	if !errors.Is(err, ErrHelp) {
		t.Fatalf("-h returned %v, want ErrHelp", err)
	}
	for _, flagName := range []string{"-metrics-addr", "-trace-out", "-check"} {
		if !strings.Contains(stderr.String(), flagName) {
			t.Errorf("usage output missing %s:\n%s", flagName, stderr.String())
		}
	}
}

func TestParseErrorsSurface(t *testing.T) {
	fs := flag.NewFlagSet("aathing", flag.ContinueOnError)
	var c Common
	c.AddFlags(fs)
	var stderr bytes.Buffer
	if err := Parse(fs, []string{"-check=banana"}, &stderr); err == nil {
		t.Fatal("bad flag value accepted")
	}
}

func TestStartEnablesAndSummarizesChecks(t *testing.T) {
	c := Common{Check: true}
	var stderr bytes.Buffer
	shutdown, err := c.Start("aathing", &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !check.Enabled() {
		t.Error("Start with Check did not enable checking")
	}
	shutdown()
	if check.Enabled() {
		t.Error("shutdown did not disable checking")
	}
	if !strings.Contains(stderr.String(), "aathing: check:") {
		t.Errorf("missing check summary, stderr: %q", stderr.String())
	}
}

func TestStartWithoutFlagsIsQuiet(t *testing.T) {
	var c Common
	var stderr bytes.Buffer
	shutdown, err := c.Start("aathing", &stderr)
	if err != nil {
		t.Fatal(err)
	}
	shutdown()
	if stderr.Len() != 0 {
		t.Errorf("unexpected output: %q", stderr.String())
	}
}

func TestStartTraceOutOpensProcessRoot(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.jsonl")
	c := Common{TraceOut: traceFile}
	var stderr bytes.Buffer
	shutdown, err := c.Start("aathing", &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !telemetry.TraceEnabled() {
		t.Fatal("Start with TraceOut did not enable tracing")
	}
	if !telemetry.ProcessParent().Valid() {
		t.Fatal("Start did not install a process-wide parent span")
	}
	telemetry.StartSpan("orphan.work").End()
	shutdown()
	if telemetry.TraceEnabled() {
		t.Error("shutdown left tracing enabled")
	}
	if telemetry.ProcessParent().Valid() {
		t.Error("shutdown left the process parent installed")
	}

	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Name   string         `json:"name"`
		Trace  string         `json:"trace_id"`
		Span   string         `json:"span_id"`
		Parent string         `json:"parent_id"`
		Attrs  map[string]any `json:"attrs"`
	}
	byName := map[string]rec{}
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("trace line not JSON: %v\n%s", err, line)
		}
		byName[r.Name] = r
	}
	proc, ok := byName["process"]
	if !ok {
		t.Fatalf("no process span in %s", string(data))
	}
	if proc.Attrs["binary"] != "aathing" {
		t.Errorf("process attrs = %v, want binary=aathing", proc.Attrs)
	}
	if proc.Parent != "" {
		t.Errorf("process span has parent %q, want root", proc.Parent)
	}
	orphan := byName["orphan.work"]
	if orphan.Parent != proc.Span || orphan.Trace != proc.Trace {
		t.Errorf("orphan span not linked under process root: %+v vs %+v", orphan, proc)
	}
}

func TestStartProfileDirCapturesProfiles(t *testing.T) {
	dir := t.TempDir()
	c := Common{ProfileDir: dir}
	var stderr bytes.Buffer
	shutdown, err := c.Start("aathing", &stderr)
	if err != nil {
		t.Fatal(err)
	}
	// The default CPU window is seconds long; the cpu capture file is
	// created as soon as the first cycle's window opens.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cpus, _ := filepath.Glob(filepath.Join(dir, "cpu-*.pprof"))
		if len(cpus) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cpu profile capture started")
		}
		time.Sleep(time.Millisecond)
	}
	shutdown()
	if !strings.Contains(stderr.String(), "pprof profiles") {
		t.Errorf("missing profiler startup line, stderr: %q", stderr.String())
	}
}

func TestStartProfileDirErrorShutsTelemetryDown(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := Common{ProfileDir: filepath.Join(file, "sub")}
	var stderr bytes.Buffer
	if _, err := c.Start("aathing", &stderr); err == nil {
		t.Fatal("Start with unusable profile dir succeeded, want error")
	}
}
