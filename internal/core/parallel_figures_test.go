package core_test

// Byte-identity of the parallel Assign2 path against the serial path
// across the six figure workload distributions — the same acceptance
// property the Assign1 fast path carries (fastpath_figures_test.go):
// multi-core execution may change the wall clock, not a single output
// bit. Real generated instances complement the adversarial-tie
// white-box tests in parallel_test.go.

import (
	"math"
	"runtime"
	"testing"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
)

func TestAssign2ParallelMatchesSerialFigureCorpus(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	base := rng.New(2024)
	for wi, w := range check.FigureWorkloads() {
		for _, shape := range []struct{ m, n int }{
			{1, 9}, {4, 3}, {8, 40}, {8, 300}, {3, 120}, {8, 2000}, {64, 1000},
		} {
			r := base.SplitPath(uint64(wi), uint64(shape.m), uint64(shape.n))
			in, err := gen.Instance(w.Dist, shape.m, 100, shape.n, r)
			if err != nil {
				t.Fatalf("%s: gen.Instance: %v", w.Name, err)
			}
			so := core.SuperOptimal(in)
			gs := core.Linearize(in, so)
			serial := core.Assign2Linearized(in, gs)
			par := core.Assign2LinearizedParallel(in, gs)
			for i := range serial.Server {
				if par.Server[i] != serial.Server[i] ||
					math.Float64bits(par.Alloc[i]) != math.Float64bits(serial.Alloc[i]) {
					t.Fatalf("%s m=%d n=%d thread %d: parallel (%d,%v) != serial (%d,%v)",
						w.Name, shape.m, shape.n, i,
						par.Server[i], par.Alloc[i], serial.Server[i], serial.Alloc[i])
				}
			}
		}
	}
}
