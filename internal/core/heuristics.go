package core

import (
	"math"

	"aa/internal/alloc"
	"aa/internal/rng"
	"aa/internal/utility"
)

// The four heuristics the paper compares against in §VII. Each combines
// an assignment rule (Uniform = round robin, Random = uniform random
// server) with an allocation rule (Uniform = equal split of C among the
// server's threads, Random = flat-Dirichlet random split).

// AssignUU is uniform assignment + uniform allocation.
func AssignUU(in *Instance) Assignment {
	return heuristic(in, roundRobin(in), equalAlloc, nil)
}

// AssignUR is uniform assignment + random allocation.
func AssignUR(in *Instance, r *rng.Rand) Assignment {
	return heuristic(in, roundRobin(in), randomAlloc, r)
}

// AssignRU is random assignment + uniform allocation.
func AssignRU(in *Instance, r *rng.Rand) Assignment {
	return heuristic(in, randomServers(in, r), equalAlloc, r)
}

// AssignRR is random assignment + random allocation.
func AssignRR(in *Instance, r *rng.Rand) Assignment {
	return heuristic(in, randomServers(in, r), randomAlloc, r)
}

// roundRobin maps thread i to server i mod m.
func roundRobin(in *Instance) []int {
	servers := make([]int, in.N())
	for i := range servers {
		servers[i] = i % in.M
	}
	return servers
}

// randomServers maps each thread to an independently uniform server.
func randomServers(in *Instance, r *rng.Rand) []int {
	servers := make([]int, in.N())
	for i := range servers {
		servers[i] = r.Intn(in.M)
	}
	return servers
}

type allocRule func(fs []utility.Func, budget float64, r *rng.Rand) alloc.Result

func equalAlloc(fs []utility.Func, budget float64, _ *rng.Rand) alloc.Result {
	return alloc.EqualSplit(fs, budget)
}

func randomAlloc(fs []utility.Func, budget float64, r *rng.Rand) alloc.Result {
	return alloc.RandomSplit(fs, budget, r)
}

// heuristic applies a fixed thread→server map and a per-server allocation
// rule.
func heuristic(in *Instance, servers []int, rule allocRule, r *rng.Rand) Assignment {
	n := in.N()
	out := NewAssignment(n)
	copy(out.Server, servers)
	fs := cappedThreads(in)
	// Group threads per server.
	groups := make([][]int, in.M)
	for i, s := range servers {
		groups[s] = append(groups[s], i)
	}
	for _, group := range groups {
		if len(group) == 0 {
			continue
		}
		gfs := make([]utility.Func, len(group))
		for k, i := range group {
			gfs[k] = fs[i]
		}
		res := rule(gfs, in.C, r)
		for k, i := range group {
			out.Alloc[i] = res.Alloc[k]
		}
	}
	return out
}

// AssignBestAlloc keeps a heuristic's thread→server map but replaces its
// allocation step with the optimal per-server concave allocation. It
// isolates how much of AA's advantage comes from joint assignment versus
// allocation alone — the ablation DESIGN.md calls out.
func AssignBestAlloc(in *Instance, servers []int) Assignment {
	n := in.N()
	out := NewAssignment(n)
	copy(out.Server, servers)
	fs := cappedThreads(in)
	groups := make([][]int, in.M)
	for i, s := range servers {
		groups[s] = append(groups[s], i)
	}
	for _, group := range groups {
		if len(group) == 0 {
			continue
		}
		gfs := make([]utility.Func, len(group))
		for k, i := range group {
			gfs[k] = fs[i]
		}
		res := alloc.Concave(gfs, in.C)
		for k, i := range group {
			out.Alloc[i] = res.Alloc[k]
		}
	}
	return out
}

// AssignFixedRequest is the strawman from the paper's introduction:
// each thread demands a fixed amount requests[i]; threads are placed
// first-fit in the given order and receive exactly their request if it
// fits on some server, otherwise they are parked (zero allocation) on the
// emptiest server. No adjustment to co-located threads is ever made.
func AssignFixedRequest(in *Instance, requests []float64) Assignment {
	n := in.N()
	out := NewAssignment(n)
	residual := make([]float64, in.M)
	for j := range residual {
		residual[j] = in.C
	}
	for i := 0; i < n; i++ {
		req := math.Min(requests[i], in.C)
		placed := false
		for j := 0; j < in.M; j++ {
			if residual[j] >= req {
				out.Server[i] = j
				out.Alloc[i] = req
				residual[j] -= req
				placed = true
				break
			}
		}
		if !placed {
			// Park with zero resource on the emptiest server.
			best := 0
			for j := 1; j < in.M; j++ {
				if residual[j] > residual[best] {
					best = j
				}
			}
			out.Server[i] = best
			out.Alloc[i] = 0
		}
	}
	return out
}
