package alloc

import (
	"math"

	"aa/internal/utility"
)

// warmRelTol is the budget-gap stop criterion of the warm-started
// λ-search: the search ends once the feasible probe leaves at most
// warmRelTol·budget of the budget unallocated (the redistribution pass
// then hands the residue to plateau threads). The cold search instead
// bisects the λ-interval down to float64 noise so repeated cold solves
// are bit-identical; the warm search trades that for far fewer probes,
// which is exactly what the solve cache's repair path wants.
const warmRelTol = 1e-9

// ConcaveWarmInto is ConcaveInto with the λ-search warm-started from
// the water-filling price of a previous, nearby solve (Result.Lambda).
// When only a few utilities changed, Σ x_i(λ_hint) already lands within
// a few caps of the budget, so a geometric bracket around the hint plus
// an Illinois-damped false-position refinement reaches the budget-gap
// tolerance in a handful of O(n) probes instead of the cold search's
// dozens.
//
// The result is feasible under exactly the same contract as ConcaveInto
// (allocations within per-thread caps, Σ x_i ≤ budget up to tolerance)
// but is NOT bit-identical to a cold solve: its total utility sits
// within warmRelTol·budget·λ of the cold optimum. Callers that need the
// cold fixed point (or have no previous price) pass lambdaHint ≤ 0,
// which falls straight through to ConcaveInto.
func ConcaveWarmInto(dst []float64, fs []utility.Func, budget, lambdaHint float64) Result {
	if !(lambdaHint > 0) || math.IsInf(lambdaHint, 0) {
		return ConcaveInto(dst, fs, budget)
	}
	n := len(fs)
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]float64, n)
	}
	if n == 0 || budget <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return Result{Alloc: dst}
	}

	sc := concavePool.Get().(*Scratch)
	defer concavePool.Put(sc)
	sc.grow(n)
	caps := sc.caps[:n]
	active := sc.active[:0]

	capSum := 0.0
	for i, f := range fs {
		caps[i] = f.Cap()
		capSum += caps[i]
	}
	if capSum <= budget {
		copy(dst, caps)
		return Result{Alloc: dst, Total: TotalValue(fs, dst)}
	}
	for i := range fs {
		active = append(active, i)
	}

	// The probe machinery is identical to ConcaveInto: settled threads
	// carry their contribution in base and drop out of later probes.
	base := 0.0
	sumActive := func(lambda float64) float64 {
		sum := base
		for _, i := range active {
			x := utility.InverseDeriv(fs[i], lambda, 1e-12)
			dst[i] = x
			sum += x
		}
		return sum
	}
	settleAtZero := func() {
		kept := active[:0]
		for _, i := range active {
			if dst[i] != 0 {
				kept = append(kept, i)
			}
		}
		active = kept
	}
	settleAtCap := func() {
		kept := active[:0]
		for _, i := range active {
			if dst[i] == caps[i] {
				base += caps[i]
			} else {
				kept = append(kept, i)
			}
		}
		active = kept
	}

	tol := warmRelTol * budget
	iterations := 1
	gaveUp := false
	var lo, hi, fLo, fHi, hiSum float64

	// Bracket the optimum geometrically around the hint. Settling follows
	// the same monotonicity argument as the cold search: an over-budget
	// probe only ever precedes probes at λ at least as large (zeros stay
	// zero), a within-budget probe only ever precedes probes at λ no
	// larger (caps stay capped).
	if sum := sumActive(lambdaHint); sum > budget {
		settleAtZero()
		lo, fLo = lambdaHint, sum-budget
		hi = lambdaHint * 2
		for {
			iterations++
			s := sumActive(hi)
			if s <= budget {
				hiSum, fHi = s, s-budget
				settleAtCap()
				break
			}
			settleAtZero()
			lo, fLo = hi, s-budget
			hi *= 2
			if hi > 1e18 {
				gaveUp = true // astronomically steep derivatives; mirror the cold scale-down path
				break
			}
		}
	} else {
		hi, hiSum, fHi = lambdaHint, sum, sum-budget
		settleAtCap()
		if budget-sum <= tol {
			lo, fLo = hi, fHi // already within tolerance; degenerate bracket
		} else {
			lo = lambdaHint
			for {
				lo /= 2
				if lo < 1e-300 {
					lo = 0
				}
				iterations++
				s := sumActive(lo)
				if s > budget {
					fLo = s - budget
					settleAtZero()
					break
				}
				hi, hiSum, fHi = lo, s, s-budget
				settleAtCap()
				if lo == 0 {
					fLo = fHi // λ = 0 is feasible: the optimum is the bracket itself
					break
				}
			}
		}
	}

	// Refine by false position with the Illinois damping (halve the
	// retained endpoint's residual when the same side wins twice), which
	// guarantees superlinear convergence where plain secant can stagnate.
	// The stop test uses the true sum at hi, never the damped residuals.
	if !gaveUp {
		side := 0
		for iter := 0; iter < 200; iter++ {
			if budget-hiSum <= tol || hi-lo <= 1e-15*(1+hi) {
				break
			}
			var mid float64
			if denom := fLo - fHi; denom > 0 {
				mid = lo + fLo*(hi-lo)/denom
			}
			if !(mid > lo && mid < hi) {
				mid = 0.5 * (lo + hi)
			}
			iterations++
			s := sumActive(mid)
			if f := s - budget; f > 0 {
				lo, fLo = mid, f
				settleAtZero()
				if side < 0 {
					fHi *= 0.5
				}
				side = -1
			} else {
				hi, hiSum, fHi = mid, s, f
				settleAtCap()
				if side > 0 {
					fLo *= 0.5
				}
				side = +1
			}
		}
	}

	// Same endgame as ConcaveInto: evaluate the feasible end, scale down
	// if the doubling search gave up, then redistribute the residual
	// budget to plateau threads at λ = lo in index order.
	sum := sumActive(hi)
	if sum > budget {
		scale := budget / sum
		for i := range dst {
			dst[i] *= scale
		}
		return Result{Alloc: dst, Total: TotalValue(fs, dst), Lambda: hi, Iterations: iterations}
	}
	remaining := budget - sum
	if remaining > 0 {
		for _, i := range active {
			if remaining <= 1e-12*budget {
				break
			}
			more := utility.InverseDeriv(fs[i], lo, 1e-12) - dst[i]
			if more <= 0 {
				continue
			}
			grant := math.Min(more, remaining)
			dst[i] += grant
			remaining -= grant
		}
	}
	return Result{Alloc: dst, Total: TotalValue(fs, dst), Lambda: hi, Iterations: iterations}
}
