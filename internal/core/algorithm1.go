package core

import "aa/internal/telemetry"

// Assign1 is the paper's Algorithm 1: the greedy on the linearized
// problem, achieving total utility at least α = 2(√2−1) ≈ 0.828 times
// optimal (Theorem V.16).
//
// Each iteration considers the unassigned threads. If some thread still
// fits its super-optimal allocation ĉ_i on some server (a "full"
// candidate), the one with the greatest linearized utility g_i(ĉ_i) is
// assigned there and allocated exactly ĉ_i. Otherwise every remaining
// thread must settle for a server's leftovers; the (thread, server) pair
// extracting the greatest utility g_i(C_j) is chosen and the thread takes
// everything the server has left.
//
// The implementation runs in O((n+m) log(n+m)) rather than the paper's
// textbook O(mn²) scan: a max-heap over server residuals replaces the
// per-pass server sweep, and two priority queues over threads — full
// candidates by g(ĉ), the rest by ramp slope — replace the per-pass thread
// sweep. The max residual only shrinks, so each thread crosses from "fits"
// to "doesn't fit" at most once and the queues migrate lazily. Assign1Ref
// retains the quadratic implementation; the two are byte-identical on any
// linearization with ĉ_i ∈ [0, C] (which Linearize guarantees), a property
// the differential tests assert across the figure corpus.
func Assign1(in *Instance) Assignment {
	so := SuperOptimal(in)
	gs := Linearize(in, so)
	return Assign1Linearized(in, gs)
}

// Assign1Linearized runs Algorithm 1 given precomputed linearized
// utilities, letting callers share one super-optimal computation across
// several algorithms (or drive adversarial linearizations in tests).
// Requires ĉ_i ≥ 0, as Linearize produces: a negative ĉ would grow a
// server's residual and break the shrinking-max invariant the fast path
// (and the algorithm's own analysis) relies on.
func Assign1Linearized(in *Instance, gs []Linearized) Assignment {
	w := GetWorkspace()
	defer PutWorkspace(w)
	var out Assignment
	w.Assign1Linearized(in, gs, &out)
	return out
}

// Assign1Ref is Assign1 running on the retained O(mn²) reference
// implementation — the textbook transcription of the paper's pseudocode.
// It exists as the oracle for differential tests of the heap-based fast
// path and for before/after benchmarks; solve paths should use Assign1.
func Assign1Ref(in *Instance) Assignment {
	so := SuperOptimal(in)
	gs := Linearize(in, so)
	return Assign1LinearizedRef(in, gs)
}

// Assign1LinearizedRef is the reference implementation behind Assign1Ref.
//
// Its per-pass scans pick, among the unassigned threads, the full
// candidate maximizing g(ĉ) — or, when none fits, the thread maximizing
// the utility of the fullest server's leftovers R. For that second pick it
// compares ramp slopes rather than the values g_i(R): with ĉ_i > R ≥ 0
// every candidate's value is slope_i·R, so the ranking is the same, but
// comparing slopes directly cannot disagree with the fast path over a
// rounding flip in the multiplication by R (and when R = 0 every remaining
// thread receives zero on the same server, so any pick order yields the
// identical assignment).
func Assign1LinearizedRef(in *Instance, gs []Linearized) Assignment {
	start := stageStart()
	n, m := in.N(), in.M
	out := NewAssignment(n)
	residual := make([]float64, m)
	for j := range residual {
		residual[j] = in.C
	}
	assigned := make([]bool, n)

	// Work counters for the loops actually run, flushed once at the end:
	// fit-checks are (unassigned thread, fullest server) examinations,
	// server ops the residual-scan steps of each pass.
	var fitChecks, serverOps uint64

	for remaining := n; remaining > 0; remaining-- {
		// Phase 1 candidate: unassigned thread with the greatest g_i(ĉ_i)
		// among those whose ĉ_i still fits on some server. Track the
		// fullest feasible server for the tie-breaking placement.
		bestFull, bestFullServer := -1, -1
		var bestFullVal float64
		// Phase 2 candidate: pair (i, j) maximizing g_i(C_j); since no
		// server fits ĉ_i, g_i(C_j) = slope_i · C_j, maximized at the
		// fullest server, so only the fullest server matters per thread.
		maxServer, maxResidual := 0, residual[0]
		for j := 1; j < m; j++ {
			serverOps++
			if residual[j] > maxResidual {
				maxServer, maxResidual = j, residual[j]
			}
		}
		bestPartial := -1
		var bestPartialVal float64

		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			fitChecks++
			g := gs[i]
			if g.CHat <= maxResidual {
				// Thread fits somewhere (in particular on maxServer).
				if bestFull < 0 || g.UHat > bestFullVal {
					bestFull, bestFullVal, bestFullServer = i, g.UHat, maxServer
				}
				continue
			}
			if v := g.Slope(); bestPartial < 0 || v > bestPartialVal {
				bestPartial, bestPartialVal = i, v
			}
		}

		var pick, server int
		var amount float64
		if bestFull >= 0 {
			pick, server, amount = bestFull, bestFullServer, gs[bestFull].CHat
		} else {
			pick, server, amount = bestPartial, maxServer, maxResidual
		}
		assigned[pick] = true
		out.Server[pick] = server
		out.Alloc[pick] = amount
		residual[server] -= amount
		if residual[server] < 0 {
			residual[server] = 0 // float guard
		}
	}
	if !start.IsZero() {
		metricAssign1Calls.Inc()
		metricAssign1Passes.Add(uint64(n))
		metricAssign1FitChecks.Add(fitChecks)
		metricAssign1ServerOps.Add(serverOps)
		stageEnd(start, metricAssign1Seconds, "core.assign1", telemetry.SpanContext{}, n)
	}
	return out
}
