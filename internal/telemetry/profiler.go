package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Continuous profiling: a background loop that captures a short CPU
// profile plus a heap snapshot every cycle into an on-disk ring of
// bounded size, so "where did the last bad minute go" is answerable
// after the fact without having had pprof attached at the time. File
// names embed the process start time and a cycle sequence number
// (cpu-<start>-<seq>.pprof / heap-<start>-<seq>.pprof), so
// lexicographic order is capture order and pruning keeps the newest.

// ProfilerOptions configure StartProfiler. The zero value means a 60 s
// cycle with a 5 s CPU window, keeping the 16 newest files per kind.
type ProfilerOptions struct {
	// Interval is the cycle period; <= 0 means 60 s.
	Interval time.Duration
	// CPUDuration is the CPU-profile window per cycle; <= 0 means 5 s,
	// and it is clamped to half the interval.
	CPUDuration time.Duration
	// Keep bounds the on-disk ring per profile kind; <= 0 means 16.
	Keep int
	// Logf, when non-nil, receives capture errors (the loop keeps
	// running; a transiently busy CPU profiler must not kill it).
	Logf func(format string, args ...any)
}

// Profiler is a running continuous profiler. Create with
// StartProfiler; Stop halts the loop and finishes any in-flight
// capture.
type Profiler struct {
	dir      string
	interval time.Duration
	cpuDur   time.Duration
	keep     int
	logf     func(string, ...any)
	prefix   string

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartProfiler begins continuous CPU+heap profiling into dir
// (created if missing) and returns the running profiler. The first
// cycle starts immediately, so even short-lived processes leave a
// capture behind.
func StartProfiler(dir string, opts ProfilerOptions) (*Profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: profile dir: %w", err)
	}
	if opts.Interval <= 0 {
		opts.Interval = 60 * time.Second
	}
	if opts.CPUDuration <= 0 {
		opts.CPUDuration = 5 * time.Second
	}
	if opts.CPUDuration > opts.Interval/2 {
		opts.CPUDuration = opts.Interval / 2
	}
	if opts.Keep <= 0 {
		opts.Keep = 16
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	p := &Profiler{
		dir:      dir,
		interval: opts.Interval,
		cpuDur:   opts.CPUDuration,
		keep:     opts.Keep,
		logf:     logf,
		prefix:   fmt.Sprintf("%d-%d", time.Now().Unix(), os.Getpid()),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.loop()
	return p, nil
}

// Dir returns the capture directory.
func (p *Profiler) Dir() string { return p.dir }

// Stop halts the profiler, finishing (not abandoning) an in-flight
// CPU window, and waits for the loop to exit.
func (p *Profiler) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

func (p *Profiler) loop() {
	defer close(p.done)
	for seq := 0; ; seq++ {
		cycleStart := time.Now()
		stopping := p.captureCPU(seq)
		p.captureHeap(seq)
		p.prune()
		if stopping {
			return
		}
		wait := p.interval - time.Since(cycleStart)
		if wait < 0 {
			wait = 0
		}
		select {
		case <-p.stop:
			return
		case <-time.After(wait):
		}
	}
}

// file returns the capture path for one kind and cycle.
func (p *Profiler) file(kind string, seq int) string {
	return filepath.Join(p.dir, fmt.Sprintf("%s-%s-%06d.pprof", kind, p.prefix, seq))
}

// captureCPU profiles CPU for the configured window (cut short by
// Stop). It reports whether Stop was requested during the window, so
// the loop can exit after flushing this cycle. Start failures — e.g.
// another CPU profile already running via /debug/pprof/profile — are
// logged and skipped, not fatal.
func (p *Profiler) captureCPU(seq int) (stopping bool) {
	path := p.file("cpu", seq)
	f, err := os.Create(path)
	if err != nil {
		p.logf("telemetry: profiler: %v\n", err)
		return false
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		p.logf("telemetry: profiler: cpu profile: %v\n", err)
		f.Close()
		os.Remove(path)
		return false
	}
	select {
	case <-p.stop:
		stopping = true
	case <-time.After(p.cpuDur):
	}
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		p.logf("telemetry: profiler: %v\n", err)
	}
	return stopping
}

// captureHeap writes a point-in-time heap profile.
func (p *Profiler) captureHeap(seq int) {
	path := p.file("heap", seq)
	f, err := os.Create(path)
	if err != nil {
		p.logf("telemetry: profiler: %v\n", err)
		return
	}
	err = pprof.Lookup("heap").WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		p.logf("telemetry: profiler: heap profile: %v\n", err)
	}
}

// prune keeps the newest keep files per kind (lexicographic name order
// is capture order within a process; across restarts the unix-time
// prefix keeps it chronological) and removes the rest, bounding the
// ring even when several processes shared the directory.
func (p *Profiler) prune() {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		p.logf("telemetry: profiler: %v\n", err)
		return
	}
	byKind := map[string][]string{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".pprof") {
			continue
		}
		kind, _, ok := strings.Cut(name, "-")
		if !ok {
			continue
		}
		byKind[kind] = append(byKind[kind], name)
	}
	for _, names := range byKind {
		if len(names) <= p.keep {
			continue
		}
		sort.Strings(names)
		for _, name := range names[:len(names)-p.keep] {
			if err := os.Remove(filepath.Join(p.dir, name)); err != nil {
				p.logf("telemetry: profiler: %v\n", err)
			}
		}
	}
}
