package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// startTestHistory starts a history on a fresh registry with an
// interval long enough that only explicit TakeSnapshot calls (plus the
// immediate startup snapshot) populate the ring.
func startTestHistory(t *testing.T, capacity int) (*Registry, *History) {
	t.Helper()
	r := NewRegistry()
	h := r.StartHistory(HistoryOptions{Interval: time.Hour, Capacity: capacity})
	t.Cleanup(h.Stop)
	// Wait out the startup snapshot so counts below are deterministic.
	waitFor(t, func() bool { return len(h.Snapshots()) >= 1 })
	return r, h
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHistoryRecordsAndReduces(t *testing.T) {
	r, h := startTestHistory(t, 8)
	c := r.Counter("aa_test_ops_total")
	g := r.Gauge("aa_test_depth")
	hist := r.Histogram("aa_test_latency_seconds", []float64{0.1, 1})

	c.Add(3)
	g.Set(7)
	for i := 0; i < 10; i++ {
		hist.Observe(0.05)
	}
	h.TakeSnapshot()

	snaps := h.Snapshots()
	last := snaps[len(snaps)-1]
	if v := last.Metrics["aa_test_ops_total"]; v.Type != "counter" || v.Value != 3 {
		t.Errorf("counter reduction = %+v", v)
	}
	if v := last.Metrics["aa_test_depth"]; v.Type != "gauge" || v.Value != 7 {
		t.Errorf("gauge reduction = %+v", v)
	}
	v := last.Metrics["aa_test_latency_seconds"]
	if v.Type != "histogram" || v.Count != 10 {
		t.Errorf("histogram reduction = %+v", v)
	}
	if v.P50 <= 0 || v.P50 > 0.1 || v.P99 <= 0 || v.P99 > 0.1 {
		t.Errorf("quantile estimates out of bucket: %+v", v)
	}
	if len(snaps) >= 2 && !snaps[0].TS.Before(snaps[len(snaps)-1].TS.Add(time.Nanosecond)) {
		t.Error("snapshots not in chronological order")
	}
}

func TestHistoryRingWraps(t *testing.T) {
	r, h := startTestHistory(t, 3)
	c := r.Counter("aa_test_seq_total")
	for i := 0; i < 5; i++ {
		c.Inc()
		h.TakeSnapshot()
	}
	snaps := h.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("ring holds %d snapshots, want capacity 3", len(snaps))
	}
	// Oldest first: the retained counter values are 3, 4, 5.
	for i, want := range []float64{3, 4, 5} {
		if got := snaps[i].Metrics["aa_test_seq_total"].Value; got != want {
			t.Errorf("snapshot %d counter = %v, want %v", i, got, want)
		}
	}
}

func TestStartHistoryIsIdempotent(t *testing.T) {
	r := NewRegistry()
	h1 := r.StartHistory(HistoryOptions{Interval: time.Hour, Capacity: 4})
	defer h1.Stop()
	h2 := r.StartHistory(HistoryOptions{Interval: time.Minute, Capacity: 99})
	if h1 != h2 {
		t.Fatal("second StartHistory returned a different recorder")
	}
	if r.History() != h1 {
		t.Fatal("History() does not return the running recorder")
	}
	if h2.Capacity() != 4 || h2.Interval() != time.Hour {
		t.Errorf("second call's options took effect: cap=%d interval=%v", h2.Capacity(), h2.Interval())
	}
}

func TestHistoryBackgroundTicker(t *testing.T) {
	r := NewRegistry()
	r.Counter("aa_test_bg_total").Inc()
	h := r.StartHistory(HistoryOptions{Interval: 5 * time.Millisecond, Capacity: 16})
	defer h.Stop()
	waitFor(t, func() bool { return len(h.Snapshots()) >= 3 })
}

func TestHistoryHandler(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	// Not enabled yet: 404.
	resp, err := http.Get(srv.URL + "/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics/history before StartHistory: %d, want 404", resp.StatusCode)
	}

	h := r.StartHistory(HistoryOptions{Interval: time.Hour, Capacity: 8})
	defer h.Stop()
	waitFor(t, func() bool { return len(h.Snapshots()) >= 1 })
	r.Counter("aa_test_handler_total").Add(2)
	h.TakeSnapshot()
	h.TakeSnapshot()

	get := func(path string) (int, historyResponse) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body historyResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode, body
	}

	code, body := get("/metrics/history")
	if code != http.StatusOK {
		t.Fatalf("/metrics/history: %d", code)
	}
	if body.Capacity != 8 || body.IntervalSeconds != 3600 {
		t.Errorf("metadata = cap %d interval %v", body.Capacity, body.IntervalSeconds)
	}
	if len(body.Snapshots) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(body.Snapshots))
	}
	last := body.Snapshots[len(body.Snapshots)-1]
	if v := last.Metrics["aa_test_handler_total"]; v.Value != 2 {
		t.Errorf("last snapshot counter = %v, want 2", v.Value)
	}

	if code, body := get("/metrics/history?last=1"); code != http.StatusOK || len(body.Snapshots) != 1 {
		t.Errorf("?last=1: code %d, %d snapshots", code, len(body.Snapshots))
	}
	if code, _ := get("/metrics/history?last=bogus"); code != http.StatusBadRequest {
		t.Errorf("?last=bogus: code %d, want 400", code)
	}
}
