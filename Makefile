# Convenience targets for the aa reproduction.

GO ?= go

.PHONY: all build test vet fmtcheck race fuzz-smoke bench-smoke telemetry-smoke metrics-smoke ci bench figures examples cover clean

all: build vet fmtcheck test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fail if any file needs gofmt (same check CI runs).
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full test suite under the race detector.
race:
	$(GO) test -race ./...

# Ten seconds of fuzzing against the concave-allocation invariants.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=Fuzz -fuzztime=10s ./internal/alloc

# Every benchmark compiled and run once.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Disabled/enabled telemetry cost on the Algorithm 2 pipeline.
telemetry-smoke:
	$(GO) test -run='^$$' -bench=TelemetryOverhead -benchtime=1x .

# Live /metrics endpoint scrape against a running aabench.
metrics-smoke:
	./scripts/metrics_smoke.sh

# Mirror of .github/workflows/ci.yml.
ci: build vet fmtcheck race fuzz-smoke bench-smoke telemetry-smoke metrics-smoke

# One benchmark per paper figure/claim plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation at full scale (tables + CSV).
figures:
	$(GO) run ./cmd/aabench -fig all -ext -rom -trials 1000 -csv results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cachepartition
	$(GO) run ./examples/hosting
	$(GO) run ./examples/cloudbroker
	$(GO) run ./examples/onlinerebalance
	$(GO) run ./examples/heterogeneous

cover:
	$(GO) test -cover ./...

clean:
	rm -f aabench
	rm -rf results
