// Command aacache drives the multicore cache-partitioning pipeline end
// to end on a synthetic workload mix: profile per-thread miss-rate
// curves, build concave utilities, solve the joint socket-assignment +
// way-partitioning problem with the paper's Algorithm 2, refine the
// integer ways exactly on the measured curves, co-run the partitioned
// caches, and compare measured aggregate throughput against the
// round-robin/equal-ways, random and unpartitioned-shared baselines.
//
// Usage:
//
//	aacache [-sockets 2] [-sets 64] [-ways 16] [-n 8]
//	        [-mix balanced|hungry|streaming] [-accesses 40000] [-seed 1]
//	        [-adaptive 0] [-metrics-addr host:port]
//	        [-trace-out file.jsonl] [-check]
//
// With -adaptive N > 0 the tool additionally runs the online-measurement
// controller (no offline profiling; curves are learned from the
// allocations that actually run) for N epochs and prints its trajectory
// against the offline pipeline's throughput.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"aa/internal/cachesim"
	"aa/internal/cliutil"
	"aa/internal/core"
	"aa/internal/rng"
	"aa/internal/tableio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "aacache: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aacache", flag.ContinueOnError)
	var (
		sockets  = fs.Int("sockets", 2, "number of sockets (AA servers)")
		sets     = fs.Int("sets", 64, "cache sets per socket")
		ways     = fs.Int("ways", 16, "cache ways per socket (AA resource)")
		n        = fs.Int("n", 8, "number of threads")
		mix      = fs.String("mix", "balanced", "workload mix: balanced, hungry, streaming")
		accesses = fs.Int("accesses", 40000, "trace length per thread")
		seed     = fs.Uint64("seed", 1, "random seed")
		adaptive = fs.Int("adaptive", 0, "also run the online controller for this many epochs")
	)
	var common cliutil.Common
	common.AddFlags(fs)
	if err := cliutil.Parse(fs, args, stderr); err != nil {
		if errors.Is(err, cliutil.ErrHelp) {
			return nil
		}
		return err
	}
	shutdown, err := common.Start("aacache", stderr)
	if err != nil {
		return err
	}
	defer shutdown()

	cfg := cachesim.Config{Sets: *sets, Ways: *ways, LineSize: 64}
	if err := cfg.Validate(); err != nil {
		return err
	}
	r := rng.New(*seed)
	gens, err := buildMix(*mix, *n, r)
	if err != nil {
		return err
	}

	workloads := cachesim.GenerateWorkloads(gens, *accesses, cachesim.DefaultModel, r)
	inst, profiles, err := cachesim.BuildInstance(cfg, *sockets, workloads)
	if err != nil {
		return err
	}

	profTable := tableio.New(
		fmt.Sprintf("profiles (%d sets x %d ways, %d accesses/thread)", *sets, *ways, *accesses),
		"thread", "kind", "hr@1/4", "hr@1/2", "hr@full")
	for i, p := range profiles {
		profTable.AddRow(
			fmt.Sprintf("%d", i),
			gens[i].Name(),
			fmt.Sprintf("%.3f", p.HitRate[*ways/4]),
			fmt.Sprintf("%.3f", p.HitRate[*ways/2]),
			fmt.Sprintf("%.3f", p.HitRate[*ways]),
		)
	}
	if err := profTable.WriteASCII(stdout); err != nil {
		return err
	}

	sol, err := cachesim.Solve(inst)
	if err != nil {
		return err
	}
	refined := cachesim.OptimizeWays(cfg, *sockets, workloads, profiles, sol)
	aaRes, err := cachesim.CoRunWays(cfg, *sockets, workloads, sol, refined)
	if err != nil {
		return err
	}
	uu := core.AssignUU(inst)
	uuRes, err := cachesim.CoRun(cfg, *sockets, workloads, uu)
	if err != nil {
		return err
	}
	ru := core.AssignRU(inst, r)
	ruRes, err := cachesim.CoRun(cfg, *sockets, workloads, ru)
	if err != nil {
		return err
	}
	sharedRes, err := cachesim.SharedCoRun(cfg, *sockets, workloads, uu.Server)
	if err != nil {
		return err
	}

	asgTable := tableio.New("\nAA assignment (Algorithm 2)", "thread", "socket", "ways", "hit-rate", "throughput")
	for i := range gens {
		asgTable.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", sol.Server[i]),
			fmt.Sprintf("%d", aaRes.Ways[i]),
			fmt.Sprintf("%.3f", aaRes.HitRate[i]),
			fmt.Sprintf("%.4f", aaRes.Throughput[i]),
		)
	}
	if err := asgTable.WriteASCII(stdout); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "\naggregate throughput (measured co-run):\n")
	fmt.Fprintf(stdout, "  AA (Algorithm 2):     %.4f  (model predicted %.4f)\n",
		aaRes.Total, cachesim.PredictedTotal(inst, aaRes.Ways))
	fmt.Fprintf(stdout, "  round robin + equal:  %.4f  (%+.1f%% for AA)\n",
		uuRes.Total, 100*(aaRes.Total/uuRes.Total-1))
	fmt.Fprintf(stdout, "  random + equal:       %.4f  (%+.1f%% for AA)\n",
		ruRes.Total, 100*(aaRes.Total/ruRes.Total-1))
	fmt.Fprintf(stdout, "  shared, no parts:     %.4f  (%+.1f%% for AA)\n",
		sharedRes.Total, 100*(aaRes.Total/sharedRes.Total-1))

	if *adaptive > 0 {
		fmt.Fprintf(stdout, "\nadaptive controller (%d epochs, no offline profiling):\n", *adaptive)
		ctrl := cachesim.NewAdaptive(cfg, *sockets, cachesim.DefaultModel, len(gens))
		results, err := ctrl.Run(gens, *adaptive, *accesses, r.Split(777))
		if err != nil {
			return err
		}
		for e, res := range results {
			fmt.Fprintf(stdout, "  epoch %2d: ways=%v throughput=%.4f (%.0f%% of offline AA)\n",
				e, res.Ways, res.Throughput, 100*res.Throughput/aaRes.Total)
		}
	}
	return nil
}

// buildMix assembles n trace generators of the requested character.
func buildMix(mix string, n int, r *rng.Rand) ([]cachesim.TraceGen, error) {
	gens := make([]cachesim.TraceGen, 0, n)
	base := func(i int) uint64 { return uint64(i+1) << 32 }
	for i := 0; i < n; i++ {
		var g cachesim.TraceGen
		switch mix {
		case "balanced":
			switch i % 4 {
			case 0:
				g = cachesim.WorkingSet{Lines: 128 + r.Intn(512), LineSize: 64, Base: base(i)}
			case 1:
				g = cachesim.ZipfReuse{Lines: 500 + r.Intn(2000), S: r.Uniform(0.8, 1.4), LineSize: 64, Base: base(i)}
			case 2:
				g = cachesim.Stream{LineSize: 64, Base: base(i)}
			default:
				g = cachesim.SequentialLoop{Lines: 64 * (2 + r.Intn(12)), LineSize: 64, Base: base(i)}
			}
		case "hungry":
			g = cachesim.WorkingSet{Lines: 512 + r.Intn(1024), LineSize: 64, Base: base(i)}
		case "streaming":
			if i%3 == 0 {
				g = cachesim.WorkingSet{Lines: 128 + r.Intn(256), LineSize: 64, Base: base(i)}
			} else {
				g = cachesim.Stream{LineSize: 64, Base: base(i)}
			}
		default:
			return nil, fmt.Errorf("unknown mix %q", mix)
		}
		gens = append(gens, g)
	}
	return gens, nil
}
