package engine

import (
	"context"
	"math"

	"aa/internal/cache"
	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/telemetry"
)

// withSolveCache is the solve-result cache middleware (Options.Cache).
// It sits between the caller middleware and withCheck, so every miss
// that reaches dispatch is still fully verified before this layer sees
// (and stores) its response. Three outcomes per request:
//
//   - exact hit: the key (instance fingerprint + output-relevant request
//     params) is cached; the stored assignment is served back through
//     the request's own thread permutation, byte-identical to the
//     populating solve's output. The inner chain — including withCheck —
//     never runs: entries were check.Feasible-verified when stored.
//
//   - warm start: the key missed, but a recent entry for the same
//     (m, C, backend) group differs by at most warmK threads per side
//     under a canonical diff. The cached assignment seeds
//     core.Assign2Warm (λ-search warm-started from the cached price,
//     only changed threads re-placed); the repaired result must pass
//     feasibility AND the α-ratio bound against its own warm F̂, else
//     the middleware falls back to a cold solve as if nothing matched.
//
//   - miss: the inner chain solves; the verified response is stored.
//
// Requests with NoCache, a nil Instance (variant adapters), a Payload,
// or an unencodable utility type bypass the cache entirely.
func withSolveCache(c cache.Cache, warmK int) Middleware {
	return func(next Handler) Handler {
		return func(ctx context.Context, req *Request, resp *Response) error {
			if !telemetry.TraceEnabled() {
				_, err := cacheSolve(ctx, c, warmK, next, req, resp)
				return err
			}
			ctx, span := telemetry.StartSpanCtx(ctx, "engine.cache")
			outcome, err := cacheSolve(ctx, c, warmK, next, req, resp)
			span.AddAttrs(telemetry.String("outcome", outcome), telemetry.Bool("ok", err == nil))
			span.End()
			return err
		}
	}
}

// cacheSolve runs one request through the cache layer and reports the
// outcome for the engine.cache span.
func cacheSolve(ctx context.Context, c cache.Cache, warmK int, next Handler, req *Request, resp *Response) (string, error) {
	if req.NoCache {
		c.NoteBypass()
		return "bypass", next(ctx, req, resp)
	}
	if req.Instance == nil || req.Payload != nil {
		return "uncacheable", next(ctx, req, resp)
	}
	canon, err := cache.CanonicalizeKeyed(req.Instance, c.HashKey())
	if err != nil {
		// A utility type without a stable encoding: solve uncached.
		return "uncacheable", next(ctx, req, resp)
	}
	key := cache.RequestKey(canon.Fingerprint(), cacheParams(req))
	if e, ok := c.Get(key); ok {
		serveEntry(e, canon, req, resp)
		return "hit", nil
	}
	group := canon.GroupKey(req.bk.Name)
	if warmK > 0 && req.bk.Name == "assign2" && !req.AltAssign1 {
		if warmSolve(ctx, c, canon, key, group, warmK, req, resp) {
			return "warm", nil
		}
	}
	if err := next(ctx, req, resp); err != nil {
		return "miss", err
	}
	storeEntry(c, canon, key, group, req, resp, false)
	return "miss", nil
}

// cacheParams extracts the request fields that alter a backend's output.
// Seed is included only for stochastic backends, so deterministic solves
// of the same instance share one entry across seeds.
func cacheParams(req *Request) cache.Params {
	p := cache.Params{
		Backend:  req.bk.Name,
		MaxNodes: req.MaxNodes,
		MaxMoves: req.MaxMoves,
		Alt:      req.AltAssign1,
	}
	if req.bk.Stochastic {
		p.Seed = req.Seed
	}
	return p
}

// serveEntry materializes a cached entry into resp, un-permuting the
// canonically ordered assignment through the request's own Perm. The
// stable canonical sort matches the i-th duplicate curve on both sides,
// so the served assignment is byte-identical to the populating solve's
// even when the request's threads arrive permuted.
func serveEntry(e *cache.Entry, canon *cache.Canonical, req *Request, resp *Response) {
	n := len(canon.Perm)
	resp.Assignment.Reset(n)
	for k, orig := range canon.Perm {
		resp.Assignment.Server[orig] = e.Server[k]
		resp.Assignment.Alloc[orig] = e.Alloc[k]
	}
	if req.AltAssign1 && e.AltServer != nil {
		resp.Alt.Reset(n)
		for k, orig := range canon.Perm {
			resp.Alt.Server[orig] = e.AltServer[k]
			resp.Alt.Alloc[orig] = e.AltAlloc[k]
		}
	}
	resp.Bound = e.Bound
	resp.Lambda = e.Lambda
	resp.Moves = e.Moves
	if req.WantUtility {
		// Prefer the populating solve's value; compute only when the
		// populating request never asked for one.
		resp.Utility = e.Utility
		if math.IsNaN(resp.Utility) {
			resp.Utility = resp.Assignment.Utility(req.Instance)
		}
		if req.AltAssign1 {
			resp.AltUtility = e.AltUtility
			if math.IsNaN(resp.AltUtility) && e.AltServer != nil {
				resp.AltUtility = resp.Alt.Utility(req.Instance)
			}
		}
	}
}

// storeEntry copies a verified response into canonical thread order and
// stores it. Responses that fail check.Feasible are never cached — a
// broken backend must not poison every future request with its output.
// Callers that ran the feasibility check themselves moments earlier (the
// warm path) pass verified to skip re-checking the same response.
func storeEntry(c cache.Cache, canon *cache.Canonical, key cache.Key, group uint64, req *Request, resp *Response, verified bool) {
	n := len(canon.Perm)
	if len(resp.Assignment.Server) != n || len(resp.Assignment.Alloc) != n {
		return // adapter-shaped response; nothing cacheable
	}
	if !verified && check.Feasible(req.Instance, resp.Assignment, check.DefaultEps) != nil {
		return
	}
	e := &cache.Entry{
		Canon:   canon,
		Server:  make([]int, n),
		Alloc:   make([]float64, n),
		Utility: resp.Utility,
		Bound:   resp.Bound,
		Lambda:  resp.Lambda,
		Moves:   resp.Moves,
		Backend: resp.Backend,
	}
	for k, orig := range canon.Perm {
		e.Server[k] = resp.Assignment.Server[orig]
		e.Alloc[k] = resp.Assignment.Alloc[orig]
	}
	if req.AltAssign1 && len(resp.Alt.Server) == n {
		e.AltServer = make([]int, n)
		e.AltAlloc = make([]float64, n)
		e.AltUtility = resp.AltUtility
		for k, orig := range canon.Perm {
			e.AltServer[k] = resp.Alt.Server[orig]
			e.AltAlloc[k] = resp.Alt.Alloc[orig]
		}
	} else {
		e.AltUtility = math.NaN()
	}
	c.Put(key, group, e)
}

// warmSolve attempts the warm-start repair against the most recent
// compatible candidate. Only the first candidate passing the diff
// filter is tried — each attempt costs a (cheap but real) solve, so a
// failed repair falls back to cold rather than iterating.
func warmSolve(ctx context.Context, c cache.Cache, canon *cache.Canonical, key cache.Key, group uint64, warmK int, req *Request, resp *Response) bool {
	n := len(canon.Perm)
	for _, e := range c.Candidates(group, nil) {
		if e.Canon == nil || !(e.Lambda > 0) || e.Backend != req.bk.Name {
			continue
		}
		if d := len(e.Canon.Hashes) - n; d > warmK || d < -warmK {
			continue
		}
		matched, onlyA, onlyB := cache.Diff(e.Canon, canon)
		if len(onlyA) > warmK || len(onlyB) > warmK {
			continue
		}
		// Remap the cached placements onto the request's thread order;
		// unmatched threads stay -1 for the repair pass to place.
		seed := core.WarmSeed{
			Lambda: e.Lambda,
			Server: make([]int, n),
			Alloc:  make([]float64, n),
		}
		for i := range seed.Server {
			seed.Server[i] = -1
		}
		for _, pr := range matched {
			orig := canon.Perm[pr[1]]
			seed.Server[orig] = e.Server[pr[0]]
			seed.Alloc[orig] = e.Alloc[pr[0]]
		}
		w := core.GetWorkspace()
		if telemetry.TraceEnabled() {
			w.SetSpanContext(telemetry.SpanFromContext(ctx))
		}
		so := w.Assign2Warm(req.Instance, seed, &resp.Assignment)
		core.PutWorkspace(w)
		// The repair drops Algorithm 2's worst-case guarantee, so the
		// result must re-earn it empirically: feasibility plus the
		// α-bound against its own (conservative) warm F̂. Either failing
		// is the hard fallback to a cold solve. Probe variants keep
		// these recoverable rejections out of aa_check_violations_total.
		if check.ProbeFeasible(req.Instance, resp.Assignment, check.DefaultEps) != nil {
			return false
		}
		rep := check.RatioAgainst(so.Total, req.Instance, resp.Assignment)
		if rep.ProbeAlpha(0) != nil {
			return false
		}
		resp.Bound = so.Total
		resp.Lambda = so.Lambda
		if req.WantUtility {
			resp.Utility = rep.F
		}
		c.NoteWarmStart()
		// Store the verified warm result under its own key: the next
		// identical request is then an exact hit, and further drift can
		// warm-start from this entry's fresher price.
		storeEntry(c, canon, key, group, req, resp, true)
		return true
	}
	return false
}
