package engine

import (
	"context"
	"math"
	"time"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/telemetry"
)

// Engine-wide latency histogram; the per-backend request/failure
// counters live on the Backend (created at Register time). All of it is
// recorded only when telemetry is enabled, keeping the disabled path
// allocation- and syscall-free.
var engineSolveLat = telemetry.Default.Histogram("aa_engine_solve_latency_seconds", telemetry.LatencyBuckets)

// withTelemetry is the outermost layer: it counts every request —
// including ones that die on cancellation before dispatch — into the
// resolved backend's aa_engine_requests_total / failures counters,
// observes end-to-end latency, and emits an engine.solve trace span
// when tracing is on.
func withTelemetry(next Handler) Handler {
	return func(ctx context.Context, req *Request, resp *Response) error {
		if !telemetry.Enabled() {
			return next(ctx, req, resp)
		}
		bk := req.bk
		bk.requests.Inc()
		start := time.Now()
		err := next(ctx, req, resp)
		engineSolveLat.Observe(time.Since(start).Seconds())
		if telemetry.TraceEnabled() {
			telemetry.EmitSpan("engine.solve", start,
				telemetry.String("backend", bk.Name),
				telemetry.String("ok", boolStr(err == nil)))
		}
		if err != nil {
			bk.failures.Inc()
		}
		return err
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// withCancel fails a request whose context is already dead before any
// work starts. Backends additionally check ctx between expensive
// stages, so this is the fast-fail front door, not the only check.
func withCancel(next Handler) Handler {
	return func(ctx context.Context, req *Request, resp *Response) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return next(ctx, req, resp)
	}
}

// withCheck wraps dispatch with post-solve verification: feasibility
// plus the ratio report against the super-optimal bound — the α
// guarantee for backends that carry it, the F ≤ F̂ upper bound for
// those that don't. It runs when the engine option, the request, or
// the process-wide check.Enable switch asks for it, and fails the
// request with an error wrapping check.ErrInfeasible / check.ErrRatio
// instead of returning a bogus result.
func withCheck(force bool) Middleware {
	return func(next Handler) Handler {
		return func(ctx context.Context, req *Request, resp *Response) error {
			err := next(ctx, req, resp)
			if err != nil || !(force || req.Check || check.Enabled()) {
				return err
			}
			return verify(req, resp)
		}
	}
}

// verify checks a finished core-instance response; adapter backends
// (nil Instance) verify inside their own domain instead.
func verify(req *Request, resp *Response) error {
	in := req.Instance
	if in == nil {
		return nil
	}
	if err := check.Feasible(in, resp.Assignment, check.DefaultEps); err != nil {
		return err
	}
	rep := ratioFor(resp.Bound, req, resp.Assignment)
	if req.bk.Guaranteed {
		if err := rep.CheckAlpha(0); err != nil {
			return err
		}
	} else if err := rep.CheckBound(0); err != nil {
		return err
	}
	if !req.AltAssign1 {
		return nil
	}
	// The alternate Algorithm 1 result rides the same guarantee.
	if err := check.Feasible(in, resp.Alt, check.DefaultEps); err != nil {
		return err
	}
	return ratioFor(resp.Bound, req, resp.Alt).CheckAlpha(0)
}

// ratioFor reuses the backend's own F̂ when it computed one, and pays
// for a fresh super-optimal bound only for backends that don't.
func ratioFor(bound float64, req *Request, a core.Assignment) check.RatioReport {
	if !math.IsNaN(bound) {
		return check.RatioAgainst(bound, req.Instance, a)
	}
	return check.Ratio(req.Instance, a)
}
