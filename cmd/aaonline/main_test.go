package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunProducesTables(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-events", "40", "-costs", "0,10"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"policy summary", "full-resolve", "hybrid(0.83)", "incremental",
		"net value", "migrations",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	args := []string{"-events", "30", "-seed", "5", "-costs", "0"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-costs", "zero"}, &out); err == nil {
		t.Error("bad costs accepted")
	}
	if err := run([]string{"-events", "0"}, &out); err == nil {
		t.Error("zero events accepted")
	}
}

func TestParseCosts(t *testing.T) {
	costs, err := parseCosts(" 0, 1.5 ,20 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 || costs[1] != 1.5 {
		t.Errorf("costs %v", costs)
	}
}
