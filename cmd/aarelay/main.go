// Command aarelay fronts a set of aaserve nodes as one service: the
// cluster tier of ROADMAP item 1. It routes /solve and streaming
// /solve/batch across the configured nodes under a pluggable strategy,
// admits clients through per-client token buckets, probes node health
// (/readyz) and load (the aa_pool_queue_depth gauge from each node's
// /metrics/history), fails /solve over to the next node on transport
// errors and backpressure, and answers exact repeats from a relay-side
// shared cache keyed by the canonical instance fingerprint.
//
// Usage:
//
//	aarelay -nodes host1:8080,host2:8080[,...] [-addr localhost:8090]
//	        [-strategy least-loaded] [-probe-interval 1s]
//	        [-rate 0] [-burst 0] [-max-body-bytes 1073741824]
//	        [-drain-grace 0] [-metrics-addr host:port]
//	        [-trace-out file.jsonl] [-profile-dir dir]
//	        [-cache shared] [-cache-size 1024] [-cache-ttl 0]
//	        [-cache-key secret]
//
// The -nodes list accepts "name=host:port*weight" entries (name and
// weight optional). Strategies: round-robin, least-loaded (queue depth
// + in-flight), weighted-failover (highest weight wins; standbys take
// traffic only when every heavier node is out).
//
// Endpoints:
//
//	POST /solve           routed to one node, with failover and caching
//	POST /solve/batch     streamed through one node (no mid-stream failover)
//	GET  /nodes           JSON node-set snapshot (state, depth, in-flight)
//	GET  /backends        proxied from the first ready node
//	GET  /healthz         relay liveness
//	GET  /readyz          relay readiness (503 once SIGTERM drain starts)
//	GET  /metrics         the relay's own telemetry (plus /vars, /debug/*)
//
// Rate limiting: -rate N -burst B gives every client (keyed by remote
// IP) a token bucket of B tokens refilling at N/s; exhausted buckets
// answer 429 with a Retry-After header. -rate 0 disables limiting.
//
// Determinism contract: a /solve response is byte-identical no matter
// which node served it (nodes run deterministic backends and encode
// identically), so failover — and serving from the relay cache — is
// observable only in latency, never in bytes. Traceparent propagates on
// every forward: one traced replay through the relay yields a single
// connected trace tree spanning client, relay and nodes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"time"

	"aa/internal/cache"
	"aa/internal/cliutil"
	"aa/internal/ratelimit"
	"aa/internal/router"
	"aa/internal/serveutil"
	"aa/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "aarelay: %v\n", err)
		os.Exit(1)
	}
}

// relay holds the routing, admission and caching state behind the
// handlers.
type relay struct {
	rt      *router.Router
	limiter *ratelimit.Limiter // nil = no rate limiting
	cache   cache.Cache
	client  *http.Client
	log     *slog.Logger
	health  *serveutil.Health

	maxBodyBytes int64 // /solve body cap; <= 0 = unlimited
}

// run is the testable body of the command. ready, when non-nil,
// receives the bound address once the listener is up.
func run(args []string, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("aarelay", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8090", "listen address (use :0 for an ephemeral port)")
		nodes    = fs.String("nodes", "", "comma-separated aaserve nodes: [name=]host:port[*weight]")
		strategy = fs.String("strategy", string(router.LeastLoaded),
			"routing strategy: round-robin, least-loaded or weighted-failover")
		probeInterval = fs.Duration("probe-interval", time.Second,
			"node health/load probe interval")
		rate         = fs.Float64("rate", 0, "per-client solve admission rate in requests/second (0 = unlimited)")
		burst        = fs.Float64("burst", 0, "per-client admission burst (0 = 2x rate, min 1)")
		maxBodyBytes = fs.Int64("max-body-bytes", 1<<30,
			"reject /solve bodies larger than this (0 = unlimited)")
		drainGrace = fs.Duration("drain-grace", 0,
			"on SIGTERM, keep the listener open this long with /readyz already 503 (0 = drain immediately)")
	)
	var common cliutil.Common
	common.AddFlags(fs)
	var cacheFlags cliutil.CacheFlags
	cacheFlags.AddFlags(fs)
	if err := cliutil.Parse(fs, args, stderr); err != nil {
		if errors.Is(err, cliutil.ErrHelp) {
			return nil
		}
		return err
	}
	if *nodes == "" {
		return errors.New("-nodes is required (comma-separated host:port list)")
	}
	nodeList, err := router.ParseNodes(*nodes)
	if err != nil {
		return err
	}
	strat, err := router.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	shutdown, err := common.Start("aarelay", stderr)
	if err != nil {
		return err
	}
	defer shutdown()
	// A serving process always meters itself (same contract as aaserve).
	telemetry.Enable()

	// The relay's cache is meaningful only in shared (keyed) mode:
	// memory mode's unkeyed fingerprints must not be derived from
	// untrusted cross-client bodies, so anything but off is upgraded.
	if m := cache.Mode(cacheFlags.Mode); m != cache.ModeOff && m != "" && m != cache.ModeShared {
		fmt.Fprintf(stderr, "aarelay: -cache %s upgraded to shared (relay caches are always keyed)\n", cacheFlags.Mode)
		cacheFlags.Mode = string(cache.ModeShared)
	}
	relayCache, err := cacheFlags.Build()
	if err != nil {
		return err
	}

	rt, err := router.New(strat, nodeList)
	if err != nil {
		return err
	}
	rt.ProbeNow() // seed states/depths before the first request
	rt.StartProber(*probeInterval)
	defer rt.Stop()

	var limiter *ratelimit.Limiter
	if *rate > 0 {
		b := *burst
		if b <= 0 {
			b = 2 * (*rate)
			if b < 1 {
				b = 1
			}
		}
		limiter = ratelimit.NewLimiter(*rate, b, 0)
	}

	rl := &relay{
		rt:      rt,
		limiter: limiter,
		cache:   relayCache,
		client:  &http.Client{}, // no timeout: solve deadlines belong to the nodes
		log:     slog.New(slog.NewJSONHandler(stderr, nil)),
		health:  &serveutil.Health{},

		maxBodyBytes: *maxBodyBytes,
	}

	return serveutil.ListenAndServe(serveutil.ServeConfig{
		Name:       "aarelay",
		Addr:       *addr,
		Handler:    rl.mux(),
		Stderr:     stderr,
		Ready:      ready,
		Health:     rl.health,
		DrainGrace: *drainGrace,
	})
}

// mux wires the relay handlers behind the shared observability layer.
func (rl *relay) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", rl.handleSolve)
	mux.HandleFunc("/solve/batch", rl.handleBatch)
	mux.HandleFunc("/nodes", rl.handleNodes)
	mux.HandleFunc("/backends", rl.handleBackends)
	mux.HandleFunc("/healthz", rl.health.LivenessHandler())
	mux.HandleFunc("/readyz", rl.health.ReadinessHandler())
	mux.Handle("/", telemetry.Handler(telemetry.Default))
	log := rl.log
	if log == nil {
		log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	return serveutil.WithObservability(log, mux)
}
