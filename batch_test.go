package aa

import (
	"context"
	"errors"
	"testing"
	"time"
)

// generateBatch draws n reproducible instances with the §VII generator.
func generateBatch(t testing.TB, n, threads int) []*Instance {
	t.Helper()
	r := NewRand(7)
	ins := make([]*Instance, n)
	for i := range ins {
		in, err := GenerateInstance(UniformDist{Lo: 0, Hi: 1}, 4, 500, threads, r)
		if err != nil {
			t.Fatal(err)
		}
		ins[i] = in
	}
	return ins
}

func TestSolveBatchMatchesSolve(t *testing.T) {
	ins := generateBatch(t, 16, 24)
	out, err := SolveBatch(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(ins) {
		t.Fatalf("got %d assignments, want %d", len(out), len(ins))
	}
	for i, in := range ins {
		if got, want := out[i].Utility(in), Solve(in).Utility(in); got != want {
			t.Errorf("instance %d: batch utility %v != Solve %v", i, got, want)
		}
		if err := out[i].Validate(in, 1e-9); err != nil {
			t.Errorf("instance %d: infeasible assignment: %v", i, err)
		}
	}
}

// SolveBatch must return context.Canceled promptly even when workers
// are mid-solve on large instances.
func TestSolveBatchCancelledPromptly(t *testing.T) {
	ins := generateBatch(t, 32, 3000)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := SolveBatch(ctx, ins)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("SolveBatch took %v to notice cancellation", elapsed)
	}
}

func TestSolverPoolFacade(t *testing.T) {
	p := NewSolverPool(SolverPoolOptions{Workers: 2})
	defer p.Close()
	ins := generateBatch(t, 4, 10)
	for _, in := range ins {
		a, err := p.Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(in, 1e-9); err != nil {
			t.Errorf("pool assignment infeasible: %v", err)
		}
	}
	st := p.Snapshot()
	if st.Completed != 4 || st.Workers != 2 {
		t.Errorf("stats = %+v, want 4 completed on 2 workers", st)
	}
}

func TestSolveBatchRejectsInvalidInstance(t *testing.T) {
	ins := generateBatch(t, 3, 10)
	ins[1] = &Instance{M: 0, C: 1}
	if _, err := SolveBatch(context.Background(), ins); err == nil {
		t.Error("invalid instance did not fail the batch")
	}
}
