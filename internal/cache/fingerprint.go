package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/instio"
)

// fingerprintVersion is hashed into every fingerprint so a change to the
// canonicalization scheme (thread encoding, hash layout) invalidates old
// entries instead of silently colliding with them.
const (
	fingerprintVersion      = 2 // v2: binary thread encoding + two-lane 128-bit mixer
	fingerprintVersionKeyed = 3 // v3: v2 with key-perturbed mixer seeds (CanonicalizeKeyed)
)

// Fingerprint identifies a canonical instance: SHA-256 over the scheme
// version, server count, capacity, the feasibility ε baked into the
// check harness, and the sorted per-thread hashes.
type Fingerprint [sha256.Size]byte

// String returns the full lowercase hex form.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Key identifies one cacheable request: a Fingerprint combined with the
// request parameters that change a backend's output (RequestKey).
type Key [sha256.Size]byte

// String returns the full lowercase hex form.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ThreadHash is the canonical per-thread identity: a 128-bit hash of
// the thread's stable binary encoding (instio.AppendThreadBinary),
// stored big-endian so lexicographic byte order equals numeric order of
// the (hi, lo) lanes. The hash is a fast two-lane multiply-xor mixer,
// not a cryptographic digest: fingerprinting must cost far less than
// the solve it short-circuits (SHA-256 per thread was ~50× an Assign2
// solve at n=10⁴), 128 well-mixed bits keep the accidental birthday
// bound far below any realistic corpus, and adversarially engineered
// collisions are outside the threat model of an in-process cache. The
// shared relay tier, where keys do cross trust boundaries, uses the
// keyed variant (CanonicalizeKeyed / hash128Keyed — see DESIGN.md §15).
type ThreadHash [16]byte

// mix64 is the SplitMix64 finalizer — a full-avalanche 64-bit permutation.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hash128 digests b into two 64-bit lanes with the original unkeyed
// seeds — byte-for-byte the pre-keying hash, pinned by golden tests so
// ModeMemory fingerprints survive this refactor.
func hash128(b []byte) (hi, lo uint64) {
	return hash128Keyed(b, &zeroHashKey)
}

var zeroHashKey HashKey

// hash128Keyed digests b into two 64-bit lanes. The absorb round is one
// rotate-multiply per lane per word — canonicalization hashes every
// thread on every cache lookup, so the round must stay a handful of
// cycles — with full mix64 avalanche deferred to the finalizer. The
// tail is zero-padded and the exact length folded in at the end, so a
// short encoding cannot alias a zero-extended one. A collision requires
// both independently-keyed lanes to collide on the same input pair.
//
// The key perturbs both lane seeds and both finalizer foldings through
// mix64, so every key selects an unrelated hash family. mix64(0) == 0
// makes the zero key the identity perturbation: hash128Keyed(b, &zero)
// is exactly the historical unkeyed hash.
func hash128Keyed(b []byte, k *HashKey) (hi, lo uint64) {
	const (
		golden = 0x9E3779B97F4A7C15
		prime2 = 0xC2B2AE3D27D4EB4F
	)
	h1 := uint64(0x8A5CD789635D2DFF) ^ mix64(k[0])
	h2 := uint64(0x121FD2155C472F96) + mix64(k[1])
	n := uint64(len(b))
	for len(b) >= 8 {
		w := binary.LittleEndian.Uint64(b)
		h1 = (h1 ^ w) * golden
		h1 = h1<<29 | h1>>35
		h2 = (h2 + w) * prime2
		h2 = h2<<33 | h2>>31
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		w := binary.LittleEndian.Uint64(tail[:])
		h1 = (h1 ^ w) * golden
		h1 = h1<<29 | h1>>35
		h2 = (h2 + w) * prime2
		h2 = h2<<33 | h2>>31
	}
	h1 = mix64(h1 ^ n ^ mix64(k[2]))
	h2 = mix64(h2 + n*golden + mix64(k[3]))
	return mix64(h1 + h2), mix64(h1 ^ (h2<<1 | h2>>63))
}

// threadKey is a thread hash paired with its original index, the unit
// the canonical sort orders.
type threadKey struct {
	hi, lo uint64
	idx    int32
}

// threadKeyLess is the canonical total order: (hi, lo) numerically,
// original index as the final tiebreak — so duplicate curves keep
// ascending original indices, which is what pairs the i-th occurrence
// in one instance with the i-th in another.
func threadKeyLess(a, b threadKey) bool {
	if a.hi != b.hi {
		return a.hi < b.hi
	}
	if a.lo != b.lo {
		return a.lo < b.lo
	}
	return a.idx < b.idx
}

// sortThreadKeys sorts keys in the canonical order. Large inputs take
// an LSD radix sort over the hi lane — comparison sorts cost more than
// the Assign2 solve itself at n=10⁴ — with a cleanup pass over the
// (vanishingly rare) equal-hi runs; small inputs just use sort.Slice.
func sortThreadKeys(keys []threadKey) {
	if len(keys) < 256 {
		sort.Slice(keys, func(i, j int) bool { return threadKeyLess(keys[i], keys[j]) })
		return
	}
	scratch := make([]threadKey, len(keys))
	src, dst := keys, scratch
	var counts [256]int32
	for pass := 0; pass < 8; pass++ {
		shift := uint(8 * pass)
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range src {
			counts[(k.hi>>shift)&0xFF]++
		}
		var sum int32
		for d := range counts {
			n := counts[d]
			counts[d] = sum
			sum += n
		}
		for _, k := range src {
			d := (k.hi >> shift) & 0xFF
			dst[counts[d]] = k
			counts[d]++
		}
		src, dst = dst, src
	}
	// Eight stable passes land the result back in keys, ordered by hi
	// with equal-hi runs still in input (ascending idx) order. Finish
	// those runs with the full comparison — for 128-bit hashes a run
	// longer than one element is a 64-bit collision, so this pass is
	// effectively a single scan.
	for start := 0; start < len(keys); {
		end := start + 1
		for end < len(keys) && keys[end].hi == keys[start].hi {
			end++
		}
		if end-start > 1 {
			run := keys[start:end]
			sort.SliceStable(run, func(i, j int) bool { return threadKeyLess(run[i], run[j]) })
		}
		start = end
	}
}

// Canonical is an instance normalized for fingerprinting: per-thread
// hashes in ascending byte order, plus the permutation relating the
// canonical order back to the instance's own thread order.
type Canonical struct {
	// M and C are the instance's server count and per-server capacity.
	M int
	C float64
	// Hashes holds the thread hashes sorted ascending; duplicates (equal
	// utility curves) form runs.
	Hashes []ThreadHash
	// Perm maps canonical positions to original thread indices:
	// Perm[k] = i means canonical position k holds thread i. The sort is
	// stable, so equal hashes keep ascending original indices — the i-th
	// occurrence of a duplicate curve always maps to the i-th occurrence
	// in the other instance's canonical form, which is what makes
	// permuted exact hits byte-identical.
	Perm []int
	// keyed records whether the hashes came from a non-zero HashKey;
	// Fingerprint folds it in as a distinct scheme version so keyed and
	// unkeyed fingerprint spaces can never alias.
	keyed bool
}

// Canonicalize normalizes an instance for fingerprinting with the
// unkeyed hash (ModeMemory). It fails only when a thread's utility type
// has no stable instio encoding; such instances are simply uncacheable
// and the engine solves them directly.
func Canonicalize(in *core.Instance) (*Canonical, error) {
	return canonicalize(in, &zeroHashKey)
}

func canonicalize(in *core.Instance, key *HashKey) (*Canonical, error) {
	n := in.N()
	c := &Canonical{M: in.M, C: in.C, Hashes: make([]ThreadHash, n), Perm: make([]int, n)}
	keys := make([]threadKey, n)
	var buf []byte
	for i, f := range in.Threads {
		var err error
		buf, err = instio.AppendThreadBinary(buf[:0], f)
		if err != nil {
			return nil, fmt.Errorf("cache: thread %d: %w", i, err)
		}
		hi, lo := hash128Keyed(buf, key)
		keys[i] = threadKey{hi: hi, lo: lo, idx: int32(i)}
	}
	sortThreadKeys(keys)
	for k, tk := range keys {
		binary.BigEndian.PutUint64(c.Hashes[k][0:8], tk.hi)
		binary.BigEndian.PutUint64(c.Hashes[k][8:16], tk.lo)
		c.Perm[k] = int(tk.idx)
	}
	return c, nil
}

// Fingerprint hashes the canonical form. Thread order was normalized by
// Canonicalize, so two instances with the same thread multiset, m, and C
// fingerprint identically regardless of input order.
func (c *Canonical) Fingerprint() Fingerprint {
	h := sha256.New()
	var buf [8]byte
	if c.keyed {
		buf[0] = fingerprintVersionKeyed
	} else {
		buf[0] = fingerprintVersion
	}
	h.Write(buf[:1])
	binary.LittleEndian.PutUint64(buf[:], uint64(c.M))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c.C))
	h.Write(buf[:])
	// ε is part of the identity: entries are stored only after passing
	// check.Feasible at this tolerance, so a build with a different ε
	// must not serve entries verified under the old one.
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(check.DefaultEps))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(len(c.Hashes)))
	h.Write(buf[:])
	for i := range c.Hashes {
		h.Write(c.Hashes[i][:])
	}
	var fp Fingerprint
	h.Sum(fp[:0])
	return fp
}

// GroupKey buckets canonical forms for the warm-start candidate ring:
// instances can only seed each other when they share m, C, and the
// backend, so the ring is keyed by exactly that triple.
func (c *Canonical) GroupKey(backend string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(c.M))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c.C))
	h.Write(buf[:])
	io.WriteString(h, backend)
	return h.Sum64()
}

// Params are the request fields that alter a backend's output and so
// must separate cache keys. Seed matters only for stochastic backends —
// callers zero it for deterministic ones so equal instances share an
// entry across seeds.
type Params struct {
	Backend  string
	Seed     uint64
	MaxNodes int
	MaxMoves int
	Alt      bool
}

// RequestKey derives the storage key for one request: the instance
// fingerprint combined with the output-relevant request parameters.
func RequestKey(fp Fingerprint, p Params) Key {
	h := sha256.New()
	h.Write(fp[:])
	io.WriteString(h, p.Backend)
	var buf [8]byte
	buf[0] = 0
	h.Write(buf[:1]) // terminate the name so "a"+params can't alias "ap"+arams
	binary.LittleEndian.PutUint64(buf[:], p.Seed)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(p.MaxNodes)))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(p.MaxMoves)))
	h.Write(buf[:])
	if p.Alt {
		buf[0] = 1
	} else {
		buf[0] = 0
	}
	h.Write(buf[:1])
	var k Key
	h.Sum(k[:0])
	return k
}

// cmpHash compares two thread hashes numerically — equivalent to
// bytes.Compare (the layout is big-endian) but two uint64 comparisons
// instead of a byte loop, which matters on the Diff hot path.
func cmpHash(a, b *ThreadHash) int {
	ah, bh := binary.BigEndian.Uint64(a[0:8]), binary.BigEndian.Uint64(b[0:8])
	if ah != bh {
		if ah < bh {
			return -1
		}
		return 1
	}
	al, bl := binary.BigEndian.Uint64(a[8:16]), binary.BigEndian.Uint64(b[8:16])
	switch {
	case al < bl:
		return -1
	case al > bl:
		return 1
	}
	return 0
}

// Diff walks two canonical forms and pairs up their shared threads: it
// returns the matched canonical position pairs ([2]int{position in a,
// position in b}) and the unmatched positions on each side. Both hash
// slices are sorted, so the walk is a deterministic O(n) merge; runs of
// duplicate hashes match pairwise in order, which (with the stable sort
// in Canonicalize) pairs the i-th occurrence in a with the i-th in b.
func Diff(a, b *Canonical) (matched [][2]int, onlyA, onlyB []int) {
	// Near-misses match almost everything: size matched for the full
	// overlap up front so the hot loop never regrows it.
	if cap := min(len(a.Hashes), len(b.Hashes)); cap > 0 {
		matched = make([][2]int, 0, cap)
	}
	i, j := 0, 0
	for i < len(a.Hashes) && j < len(b.Hashes) {
		switch c := cmpHash(&a.Hashes[i], &b.Hashes[j]); {
		case c == 0:
			matched = append(matched, [2]int{i, j})
			i++
			j++
		case c < 0:
			onlyA = append(onlyA, i)
			i++
		default:
			onlyB = append(onlyB, j)
			j++
		}
	}
	for ; i < len(a.Hashes); i++ {
		onlyA = append(onlyA, i)
	}
	for ; j < len(b.Hashes); j++ {
		onlyB = append(onlyB, j)
	}
	return matched, onlyA, onlyB
}
