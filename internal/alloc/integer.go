package alloc

import "aa/internal/utility"

// IntegerWaterfill allocates an integer budget of resource units among
// concave utilities, exactly, in O(n (log C)²) time — the structure of
// Galil's algorithm cited by the paper for computing super-optimal
// allocations: bisection on the marginal value λ, where each thread's
// demand at λ (the largest unit count whose marginal gain is still ≥ λ)
// is found by an inner binary search over the nonincreasing per-unit
// gains, plus an exact completion pass for threads sitting on the final
// marginal plateau.
//
// For concave utilities it returns the same total as Greedy (Fox's
// O(B log n) unit greedy) but its runtime is logarithmic, not linear,
// in the budget — the reason the paper cites it for C = 1000 and beyond.
func IntegerWaterfill(fs []utility.Func, budget int) Result {
	n := len(fs)
	alloc := make([]float64, n)
	if n == 0 || budget <= 0 {
		return Result{Alloc: alloc}
	}

	caps := make([]int, n)
	capSum := 0
	maxGain := 0.0
	for i, f := range fs {
		caps[i] = int(f.Cap())
		capSum += caps[i]
		if g := f.Value(1) - f.Value(0); g > maxGain {
			maxGain = g
		}
	}
	if capSum <= budget {
		for i := range fs {
			alloc[i] = float64(caps[i])
		}
		return Result{Alloc: alloc, Total: TotalValue(fs, alloc)}
	}

	// demand(λ) = largest x ≤ cap with f(x) − f(x−1) ≥ λ, by binary
	// search over the nonincreasing marginal gains.
	demand := func(i int, lambda float64) int {
		f := fs[i]
		lo, hi := 0, caps[i] // invariant: marginal at lo ≥ λ (vacuous at 0)
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if f.Value(float64(mid))-f.Value(float64(mid-1)) >= lambda {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	total := func(lambda float64) int {
		sum := 0
		for i := range fs {
			sum += demand(i, lambda)
		}
		return sum
	}

	// Outer bisection on λ: total(0+) ≥ budget is not guaranteed when
	// some marginals are negative-free plateaus, but total(0) = capSum >
	// budget here; total(maxGain+ε) = 0.
	lo, hi := 0.0, maxGain*(1+1e-12)+1e-300
	for iter := 0; iter < 100 && hi-lo > 1e-15*(1+hi); iter++ {
		mid := 0.5 * (lo + hi)
		if total(mid) > budget {
			lo = mid
		} else {
			hi = mid
		}
	}

	// Feasible base at λ = hi, then hand the leftover units to plateau
	// threads (those demanding more at λ = lo); their next units all
	// have marginal gain within [lo, hi], an interval of width ~1e-15,
	// so any completion is optimal to machine precision.
	remaining := budget
	base := make([]int, n)
	for i := range fs {
		base[i] = demand(i, hi)
		remaining -= base[i]
	}
	for i := range fs {
		if remaining <= 0 {
			break
		}
		extra := demand(i, lo) - base[i]
		if extra <= 0 {
			continue
		}
		if extra > remaining {
			extra = remaining
		}
		base[i] += extra
		remaining -= extra
	}
	for i, b := range base {
		alloc[i] = float64(b)
	}
	return Result{Alloc: alloc, Total: TotalValue(fs, alloc), Lambda: hi}
}

// IntegerEqualSplit rounds the equal split down to whole units and
// redistributes the remainder one unit at a time by best marginal gain —
// a simple integer baseline used by quantization tests.
func IntegerEqualSplit(fs []utility.Func, budget int) Result {
	n := len(fs)
	alloc := make([]float64, n)
	if n == 0 || budget <= 0 {
		return Result{Alloc: alloc}
	}
	share := budget / n
	used := 0
	for i, f := range fs {
		give := share
		if c := int(f.Cap()); give > c {
			give = c
		}
		alloc[i] = float64(give)
		used += give
	}
	// Remainder: unit greedy over the leftovers.
	for used < budget {
		best, bestGain := -1, 0.0
		for i, f := range fs {
			if alloc[i]+1 > f.Cap() {
				continue
			}
			if g := f.Value(alloc[i]+1) - f.Value(alloc[i]); g > bestGain {
				best, bestGain = i, g
			}
		}
		if best < 0 {
			break
		}
		alloc[best]++
		used++
	}
	return Result{Alloc: alloc, Total: TotalValue(fs, alloc)}
}
