// Package solverpool is the concurrency layer of the repository: a
// worker-pool batch-solve engine that fans independent AA solves (and
// arbitrary solver-shaped tasks) out across a fixed set of workers.
//
// Design points, in the order they matter:
//
//   - Bounded queue with backpressure. The job queue has a fixed depth;
//     Submit rejects with ErrQueueFull when it is full rather than
//     growing without bound, and Enqueue blocks until a slot frees or
//     the caller's context is done. A caller that must not block uses
//     Submit; a caller streaming a large batch uses Enqueue and lets the
//     queue pace it.
//
//   - Per-request cancellation. Every job carries the submitter's
//     context.Context. The solve path checks it before starting and
//     between the stages of a solve (super-optimal bound →
//     linearization → assignment), so cancellation and deadlines take
//     effect promptly even mid-instance, and waiters never block on a
//     dead request.
//
//   - Allocation-free steady state. The solve path runs through a
//     core.Workspace (SolveInstanceInto, or a long-lived Session): every
//     scratch buffer a solve needs lives in the workspace and is reused,
//     so a caller re-solving instances back to back performs zero heap
//     allocations per solve once the buffers have grown to the
//     workload's size.
//
//   - Deterministic by construction. The pool imposes no ordering of its
//     own: results are reported to the slot the caller chose (SolveBatch
//     writes answers by input index), so output never depends on
//     goroutine scheduling. Anything stochastic must derive its
//     randomness from the request, not the worker (see internal/rng).
//
//   - Observable. Per-pool counters (telemetry.Counter values) count
//     submitted, rejected, completed, cancelled and failed jobs plus
//     total solve time; Snapshot returns a consistent copy cheap enough
//     to poll. The same events also feed the process-wide telemetry
//     registry (aa_pool_* metrics: shared counters, a live queue-depth
//     gauge, and enqueue/solve latency histograms) when telemetry is
//     enabled, so a /metrics endpoint sees every pool in the process.
//
//   - Verifiable. With Options.Check (or the process-wide check.Enable /
//     AA_CHECK=1 switch) every Solve/SolveBatch result is run through
//     internal/check after solving: feasibility plus the α-ratio
//     guarantee. A violation counts into aa_check_violations_total and
//     fails the request with an error wrapping check.ErrInfeasible or
//     check.ErrRatio instead of returning a bogus assignment.
package solverpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/telemetry"
)

// ErrInfeasible is the typed error a checked pool wraps when post-solve
// verification rejects a result on feasibility grounds (re-exported from
// internal/check so pool callers can errors.Is against it without
// importing the check package). Ratio violations wrap check.ErrRatio.
var ErrInfeasible = check.ErrInfeasible

// Process-wide pool metrics (aa_pool_*). Counters and histograms
// aggregate across every pool in the process and are recorded only when
// telemetry is enabled; the queue-depth gauge tracks jobs accepted but
// not yet picked up by a worker and is maintained unconditionally (two
// atomic adds per job) so that enabling telemetry mid-run still reads a
// correct depth.
var (
	poolSubmitted  = telemetry.Default.Counter("aa_pool_submitted_total")
	poolRejected   = telemetry.Default.Counter("aa_pool_rejected_total")
	poolCompleted  = telemetry.Default.Counter("aa_pool_completed_total")
	poolCancelled  = telemetry.Default.Counter("aa_pool_cancelled_total")
	poolFailed     = telemetry.Default.Counter("aa_pool_failed_total")
	poolQueueDepth = telemetry.Default.Gauge("aa_pool_queue_depth")
	poolEnqueueLat = telemetry.Default.Histogram("aa_pool_enqueue_latency_seconds", telemetry.LatencyBuckets)
	poolSolveLat   = telemetry.Default.Histogram("aa_pool_solve_latency_seconds", telemetry.LatencyBuckets)
)

// Sentinel errors returned by submission.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity — the backpressure signal. The caller decides whether to
	// retry, shed load, or switch to the blocking Enqueue.
	ErrQueueFull = errors.New("solverpool: queue full")
	// ErrClosed is returned when submitting to a closed pool.
	ErrClosed = errors.New("solverpool: pool closed")
)

// Task is one unit of work. The context is the submitter's; a task that
// honors it returns its error (context.Canceled / DeadlineExceeded) so
// the pool can count the job as cancelled rather than failed.
type Task func(ctx context.Context) error

// Options configure a Pool. The zero value is usable: GOMAXPROCS
// workers and a queue of twice that depth.
type Options struct {
	// Workers is the number of worker goroutines; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the number of jobs waiting to run (not counting
	// the ones in flight); <= 0 means 2×Workers.
	QueueDepth int
	// Check turns on post-solve verification for this pool's Solve and
	// SolveBatch: every result must pass check.PostSolve (feasibility +
	// the α-ratio guarantee) or the request fails with the violation.
	// The process-wide check.Enable switch has the same effect on every
	// pool regardless of this option.
	Check bool
}

// Stats is a snapshot of the pool's counters — the per-pool
// compatibility facade over the telemetry layer (the process-wide
// aa_pool_* registry metrics aggregate the same events across every
// pool). Submitted counts accepted jobs only (rejected ones are counted
// separately and never run); Completed + Cancelled + Failed converges
// to Submitted once the queue drains. SolveTime is the summed wall time
// of task execution across workers, so it can exceed elapsed time when
// workers run in parallel.
//
// Outcome classification is by the error the task RETURNS, decided at
// the moment the task finishes — not by the state of its context:
//
//   - Completed increments when the task returns nil, even if its
//     context was cancelled while it ran (a task that ignores
//     cancellation, or wins the race with it, counts Completed).
//   - Cancelled increments when the task returns context.Canceled or
//     context.DeadlineExceeded (possibly wrapped). Tasks whose context
//     died while they were still queued also land here, because the
//     worker always invokes the task and a well-behaved task returns
//     ctx.Err() from its first check, as SolveInstance does.
//   - Failed increments for every other non-nil error; a task that
//     swallows a cancellation and returns its own error is Failed, not
//     Cancelled.
type Stats struct {
	Workers    int
	QueueDepth int
	Submitted  uint64
	Rejected   uint64
	Completed  uint64
	Cancelled  uint64
	Failed     uint64
	SolveTime  time.Duration
}

type job struct {
	ctx  context.Context
	task Task
}

// Pool is a fixed-size worker pool over a bounded job queue. Create with
// New, release with Close. All methods are safe for concurrent use.
type Pool struct {
	workers    int
	queueDepth int
	check      bool
	jobs       chan job

	mu     sync.RWMutex // guards closed vs. sends on jobs
	closed bool
	wg     sync.WaitGroup

	// Per-pool counters backing Snapshot — telemetry metric values held
	// privately (zero values are ready to use). solveNanos accumulates
	// task wall time in nanoseconds.
	submitted  telemetry.Counter
	rejected   telemetry.Counter
	completed  telemetry.Counter
	cancelled  telemetry.Counter
	failed     telemetry.Counter
	solveNanos telemetry.Counter
}

// New starts a pool with opts. The caller owns the pool and must Close
// it to release the workers.
func New(opts Options) *Pool {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	q := opts.QueueDepth
	if q <= 0 {
		q = 2 * w
	}
	p := &Pool{
		workers:    w,
		queueDepth: q,
		check:      opts.Check,
		jobs:       make(chan job, q),
	}
	p.wg.Add(w)
	for i := 0; i < w; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the number of worker goroutines.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.run(j)
	}
}

// run executes one job and classifies its outcome by the error the task
// returns (see the Stats docs for the exact Completed/Cancelled/Failed
// contract). The task is always invoked — even when its context died
// while queued — so that callers waiting on a per-task side channel (a
// WaitGroup, a result slot) are always released; tasks are expected to
// check ctx first and bail out cheaply, as SolveInstance does.
func (p *Pool) run(j job) {
	poolQueueDepth.Add(-1)
	start := time.Now()
	err := j.task(j.ctx)
	elapsed := time.Since(start)
	p.solveNanos.Add(uint64(elapsed))
	tele := telemetry.Enabled()
	if tele {
		poolSolveLat.Observe(elapsed.Seconds())
	}
	switch {
	case err == nil:
		p.completed.Inc()
		if tele {
			poolCompleted.Inc()
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		p.cancelled.Inc()
		if tele {
			poolCancelled.Inc()
		}
	default:
		p.failed.Inc()
		if tele {
			poolFailed.Inc()
		}
	}
}

// Submit enqueues task without blocking. It returns ErrQueueFull when
// the queue is at capacity, ErrClosed after Close, or ctx.Err() if the
// request is already dead.
func (p *Pool) Submit(ctx context.Context, task Task) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.jobs <- job{ctx: ctx, task: task}:
		p.submitted.Inc()
		poolQueueDepth.Add(1)
		if telemetry.Enabled() {
			poolSubmitted.Inc()
		}
		return nil
	default:
		p.rejected.Inc()
		if telemetry.Enabled() {
			poolRejected.Inc()
			if telemetry.TraceEnabled() {
				telemetry.Event("pool.reject")
			}
		}
		return ErrQueueFull
	}
}

// Enqueue enqueues task, blocking until a queue slot frees or ctx is
// done. This is the paced path for batch producers; the queue bound is
// what provides the backpressure.
func (p *Pool) Enqueue(ctx context.Context, task Task) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	// The blocking wait below IS the backpressure; its duration is the
	// enqueue-latency histogram. time.Now stays off the disabled path.
	tele := telemetry.Enabled()
	var start time.Time
	if tele {
		start = time.Now()
	}
	select {
	case p.jobs <- job{ctx: ctx, task: task}:
		p.submitted.Inc()
		poolQueueDepth.Add(1)
		if tele {
			poolSubmitted.Inc()
			poolEnqueueLat.Observe(time.Since(start).Seconds())
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting jobs, waits for queued and in-flight jobs to
// drain, and releases the workers. Closing twice is a no-op.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// Snapshot returns the current counters for this pool. (For
// process-wide aggregates across all pools, scrape the aa_pool_*
// metrics from the telemetry registry instead.)
func (p *Pool) Snapshot() Stats {
	return Stats{
		Workers:    p.workers,
		QueueDepth: p.queueDepth,
		Submitted:  p.submitted.Value(),
		Rejected:   p.rejected.Value(),
		Completed:  p.completed.Value(),
		Cancelled:  p.cancelled.Value(),
		Failed:     p.failed.Value(),
		SolveTime:  time.Duration(p.solveNanos.Value()),
	}
}

// String formats a snapshot for logs.
func (s Stats) String() string {
	return fmt.Sprintf(
		"solverpool: workers=%d queue=%d submitted=%d rejected=%d completed=%d cancelled=%d failed=%d solvetime=%v",
		s.Workers, s.QueueDepth, s.Submitted, s.Rejected, s.Completed, s.Cancelled, s.Failed, s.SolveTime)
}

// SolveInstanceInto runs Algorithm 2 on in through the caller's solver
// workspace, writing the assignment into out (resized as needed), with
// cancellation checks between the three stages (super-optimal bound,
// linearization, assignment). The result is bit-identical to core.Assign2;
// the staging only adds the points where a cancelled context can abort a
// large instance early. Once w and out have grown to the workload's size,
// a solve performs no heap allocation — this is the batch hot loop.
func SolveInstanceInto(ctx context.Context, in *core.Instance, w *core.Workspace, out *core.Assignment) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	so := w.SuperOptimal(in)
	if err := ctx.Err(); err != nil {
		return err
	}
	gs := w.Linearize(in, so)
	if err := ctx.Err(); err != nil {
		return err
	}
	w.Assign2Linearized(in, gs, out)
	return nil
}

// SolveInstance is the allocating convenience form of SolveInstanceInto:
// it borrows a pooled workspace for the solve and returns a fresh
// Assignment the caller owns.
func SolveInstance(ctx context.Context, in *core.Instance) (core.Assignment, error) {
	w := core.GetWorkspace()
	defer core.PutWorkspace(w)
	var out core.Assignment
	if err := SolveInstanceInto(ctx, in, w, &out); err != nil {
		return core.Assignment{}, err
	}
	return out, nil
}

// Session is a single-goroutine solver context: one workspace borrowed
// from the package pool for the session's lifetime, so a caller that
// re-solves instances back to back (a simulation loop, a request handler
// pinned to a connection) pays zero steady-state allocation without
// touching the pool on every solve. Not safe for concurrent use; Close
// returns the workspace to the pool.
type Session struct {
	w *core.Workspace
}

// NewSession borrows a workspace and wraps it in a Session.
func NewSession() *Session { return &Session{w: core.GetWorkspace()} }

// Solve runs Algorithm 2 on in into out, reusing the session's workspace.
// The assignment written to out is bit-identical to core.Assign2's.
func (s *Session) Solve(ctx context.Context, in *core.Instance, out *core.Assignment) error {
	return SolveInstanceInto(ctx, in, s.w, out)
}

// Close returns the session's workspace to the pool. Using the session
// after Close panics.
func (s *Session) Close() {
	if s.w != nil {
		core.PutWorkspace(s.w)
		s.w = nil
	}
}

// solveVerified is SolveInstance plus the opt-in post-solve check: when
// the pool was built with Options.Check or the process-wide check.Enable
// is on, the result is verified (feasibility + α-ratio) before being
// handed back, and a violation fails the request instead.
func (p *Pool) solveVerified(ctx context.Context, in *core.Instance) (core.Assignment, error) {
	a, err := SolveInstance(ctx, in)
	if err != nil {
		return a, err
	}
	if p.check || check.Enabled() {
		if cerr := check.PostSolve(in, a); cerr != nil {
			return core.Assignment{}, cerr
		}
	}
	return a, nil
}

// Solve submits one instance and waits for its assignment. It returns
// ctx.Err() as soon as the request is cancelled, even if a worker is
// still chewing on the instance.
func (p *Pool) Solve(ctx context.Context, in *core.Instance) (core.Assignment, error) {
	type result struct {
		a   core.Assignment
		err error
	}
	ch := make(chan result, 1)
	err := p.Enqueue(ctx, func(tctx context.Context) error {
		a, err := p.solveVerified(tctx, in)
		ch <- result{a: a, err: err}
		return err
	})
	if err != nil {
		return core.Assignment{}, err
	}
	select {
	case r := <-ch:
		return r.a, r.err
	case <-ctx.Done():
		return core.Assignment{}, ctx.Err()
	}
}

// SolveBatch fans the instances out across the pool and returns one
// assignment per instance, in input order. The first failure cancels
// every remaining solve and is returned; cancellation of ctx returns
// promptly with ctx.Err() without waiting for in-flight workers.
func (p *Pool) SolveBatch(ctx context.Context, ins []*core.Instance) ([]core.Assignment, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		idx int
		a   core.Assignment
		err error
	}
	// Buffered to the batch size so late finishers never block after the
	// caller has gone away.
	results := make(chan result, len(ins))
	go func() {
		for i, in := range ins {
			i, in := i, in
			err := p.Enqueue(bctx, func(tctx context.Context) error {
				a, err := p.solveVerified(tctx, in)
				results <- result{idx: i, a: a, err: err}
				return err
			})
			if err != nil {
				// Queue unreachable (cancelled batch or closed pool):
				// report for this index and keep going — the remaining
				// enqueues fail the same way without blocking.
				results <- result{idx: i, err: err}
			}
		}
	}()

	out := make([]core.Assignment, len(ins))
	var firstErr error
	for range ins {
		select {
		case r := <-results:
			if r.err != nil {
				if firstErr == nil {
					firstErr = r.err
				}
				cancel()
				continue
			}
			out[r.idx] = r.a
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
