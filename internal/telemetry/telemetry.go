// Package telemetry is the repository's zero-dependency instrumentation
// layer: a process-wide registry of counters, gauges and fixed-bucket
// histograms, plus a lightweight span/trace-event API that appends JSONL
// records to a writer.
//
// Design points, in the order they matter:
//
//   - Near-zero cost when disabled. The package starts disabled; hot
//     paths guard their instrumentation behind Enabled(), a single
//     atomic load, so a binary that never opts in pays one predictable
//     branch per instrumented region (see BenchmarkEnabledCheck and the
//     root BenchmarkTelemetryOverhead for the proof).
//
//   - Allocation-free on the hot path. Counter.Add, Gauge.Set and
//     Histogram.Observe are plain atomic operations on pre-allocated
//     state; no locks, no maps, no interface boxing. Metric lookup
//     (Registry.Counter etc.) takes a mutex and belongs in package init
//     or setup code, not inner loops.
//
//   - Safe under -race. Every mutable word is a sync/atomic value; the
//     registry map is mutex-guarded; the trace sink serializes writes.
//
//   - Two export formats. Registry.WritePrometheus emits the Prometheus
//     text exposition format; Registry.WriteJSON emits an expvar-style
//     JSON object. Handler serves both over HTTP next to net/http/pprof,
//     plus the bounded snapshot ring behind /metrics/history (see
//     Registry.StartHistory).
//
//   - Request-scoped tracing. Spans carry trace/span/parent identity,
//     nest through context.Context (StartSpanCtx/SpanFromContext), link
//     under a process-wide default parent when no context is at hand
//     (SetProcessParent), and cross process boundaries as W3C
//     traceparent headers (SpanContext.Traceparent/ParseTraceparent).
//     The JSONL sink is detachable (DetachTraceWriter) so a shutdown
//     flush can never truncate the final record. StartProfiler adds a
//     continuous CPU+heap pprof capture ring on disk.
//
// Metric naming follows the Prometheus convention with the subsystem as
// prefix: aa_core_* for solver-stage metrics, aa_pool_* for the batch
// engine, aa_experiment_* for the evaluation harness. Per-figure and
// per-point tags are encoded as labels via Label.
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// enabled is the process-wide switch. All recording helpers in other
// packages are expected to guard with Enabled(); the metric types
// themselves record unconditionally so that callers owning private
// instances (e.g. solverpool's per-pool stats) always count.
var enabled atomic.Bool

// Enable turns instrumentation on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns instrumentation off process-wide.
func Disable() { enabled.Store(false) }

// Enabled reports whether instrumentation is on. It is a single atomic
// load — cheap enough to call on every solve.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing uint64. The zero value is ready
// to use, so it can be embedded directly (solverpool does).
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (queue depths, live totals).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat64 accumulates a float64 with a CAS loop (no mutex, no
// allocation).
type atomicFloat64 struct {
	bits atomic.Uint64
}

func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat64) Value() float64 {
	return math.Float64frombits(f.bits.Load())
}

// Histogram is a fixed-bucket histogram in the Prometheus style: bucket
// i counts observations v <= Bounds[i] (cumulative in the exposition,
// per-bucket internally), with one extra overflow bucket for +Inf.
// Observe is lock-free: a binary search over the bounds plus three
// atomic operations.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    atomicFloat64
}

// NewHistogram builds a histogram with the given strictly increasing
// upper bounds. Most callers should go through Registry.Histogram, which
// also registers it for export.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v is exactly the Prometheus le (inclusive) bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Bounds returns the bucket upper bounds (not including +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket that contains it, the standard Prometheus
// histogram_quantile estimate. Observations beyond the last bound clamp
// to it. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper bound to interpolate
				// toward; clamp to the last bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencyBuckets are the default bounds for latency histograms, in
// seconds: exponential from 1µs to 10s, dense enough for p50/p99
// estimates across the solve sizes this repository handles.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}
