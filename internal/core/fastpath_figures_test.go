package core_test

// Byte-identity of the Assign1 fast path against the quadratic reference
// across the six figure workload distributions of the paper's §VII
// evaluation — the acceptance property of the perf PR: the rewrite may
// change the complexity class, not a single output bit.

import (
	"testing"

	"aa/internal/check"
	"aa/internal/core"
	"aa/internal/gen"
	"aa/internal/rng"
)

func TestAssign1FastMatchesRefFigureCorpus(t *testing.T) {
	base := rng.New(888)
	for wi, w := range check.FigureWorkloads() {
		for _, shape := range []struct{ m, n int }{
			{1, 9}, {4, 3}, {8, 40}, {8, 300}, {3, 120},
		} {
			for trial := 0; trial < 3; trial++ {
				r := base.SplitPath(uint64(wi), uint64(shape.m), uint64(shape.n), uint64(trial))
				in, err := gen.Instance(w.Dist, shape.m, 100, shape.n, r)
				if err != nil {
					t.Fatalf("%s: gen.Instance: %v", w.Name, err)
				}
				so := core.SuperOptimal(in)
				gs := core.Linearize(in, so)
				fast := core.Assign1Linearized(in, gs)
				ref := core.Assign1LinearizedRef(in, gs)
				for i := range ref.Server {
					if fast.Server[i] != ref.Server[i] || fast.Alloc[i] != ref.Alloc[i] {
						t.Fatalf("%s m=%d n=%d trial=%d thread %d: fast (%d,%v) != ref (%d,%v)",
							w.Name, shape.m, shape.n, trial, i,
							fast.Server[i], fast.Alloc[i], ref.Server[i], ref.Alloc[i])
					}
				}
			}
		}
	}
}
